// Lint report: the structured output of the static analysis passes.
//
// A LintReport aggregates every pass's findings plus the analysis facts the
// DSE feasibility check needs (required work-group size, cross-work-item
// dependences, classification results). It renders to human-readable text,
// to JSON (for tooling), and into a support::DiagnosticEngine.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/access_pattern.h"
#include "analysis/dataflow/affine.h"
#include "model/design_point.h"
#include "support/diagnostics.h"

namespace flexcl::analysis {

/// Version of the lint JSON schema: the first key of every renderJson
/// object. Bumped whenever a key is added, removed or reordered.
inline constexpr int kLintSchemaVersion = 4;

/// One diagnostic from a lint pass.
struct LintFinding {
  std::string pass;  ///< emitting pass name (e.g. "verifier")
  std::string rule;  ///< stable kebab-case rule id (e.g. "def-before-use")
  DiagSeverity severity = DiagSeverity::Warning;
  SourceLocation loc;
  std::string message;
  int instId = -1;  ///< IR instruction id when the finding is access-specific
  int loopId = -1;  ///< loop id when the finding is loop-specific
};

/// A statically detected cross-work-item RAW dependence through local memory
/// (Figure 3's B[tid-1] shape): work-item t+distance reads what work-item t
/// stored.
struct CrossWiDependence {
  unsigned storeInstId = 0;
  unsigned loadInstId = 0;
  std::int64_t distance = 0;  ///< in work-items, > 0
  SourceLocation loc;         ///< location of the load
};

/// Byte-extent fact for one access site whose offset linearized exactly:
/// input of the out-of-bounds lint rule and of the per-design local
/// out-of-bounds feasibility check (checkDesign re-evaluates the form under
/// each candidate work-group size).
struct AccessBoundFact {
  unsigned instId = 0;
  SourceLocation loc;
  bool isWrite = false;
  ir::AddressSpace space = ir::AddressSpace::Global;
  int baseIndex = -1;           ///< arg index / position in fn.localAllocas
  dataflow::AffineForm offset;  ///< exact byte offset from the base
  std::uint32_t bytes = 0;      ///< access width in bytes
  std::int64_t extent = -1;     ///< base byte extent; -1 unknown
  /// Offset leaves are LocalId dimensions only: the form's extremes are
  /// realised by actual work-items under any work-group size, so a range
  /// check against `extent` is exact (not an over-approximation).
  bool localIdOnly = false;
  bool divergent = false;  ///< under id-dependent or opaque control flow
};

struct LintReport {
  std::string kernelName;
  std::vector<LintFinding> findings;

  // Feasibility inputs.
  std::array<std::uint32_t, 3> reqdWorkGroupSize = {0, 0, 0};
  bool usesBarrier = false;
  std::vector<CrossWiDependence> crossWiDeps;
  std::vector<AccessBoundFact> accessBounds;
  /// Launch global size the lint ran under (0 = unknown); lets checkDesign
  /// replicate the model's work-group divisor clamping per design point.
  std::array<std::uint64_t, 3> launchGlobal = {0, 0, 0};

  // Analysis statistics.
  std::size_t loopCount = 0;
  std::size_t unresolvedTripLoops = 0;
  std::size_t globalAccessSites = 0;
  std::size_t classifiedSites = 0;  ///< sites with a static pattern majority
  PatternCrossCheck patterns;
  bool crossChecked = false;  ///< profiled comparison ran
  /// Static-profile tier verdict for the linted launch: "exact" |
  /// "approximate" | "unsupported", empty when the lint ran without the full
  /// launch (range + args + buffers). `staticProfileReason` carries the
  /// first blocking reason for non-exact verdicts (empty for exact).
  std::string staticProfileVerdict;
  std::string staticProfileReason;
  /// Race-verifier verdict for the linted launch: "race-free" | "racy" |
  /// "unknown", empty when the lint ran without a trusted launch range
  /// (DESIGN.md §15). `raceReason` carries the witness summary (racy) or the
  /// first blocking reason (unknown).
  std::string raceVerdict;
  std::string raceReason;
  std::uint64_t racePairsChecked = 0;
  std::uint64_t raceRacyPairs = 0;
  std::uint64_t raceUnknownPairs = 0;
  std::uint64_t raceBarrierIntervals = 0;
  std::vector<std::string> raceWitnesses;  ///< rendered witness per racy pair

  [[nodiscard]] std::size_t errorCount() const;
  [[nodiscard]] std::size_t warningCount() const;
  [[nodiscard]] bool hasErrors() const { return errorCount() > 0; }

  /// Forwards every finding into `diags` as "[pass/rule] message".
  void emitTo(DiagnosticEngine& diags) const;
};

/// Static feasibility of one design point for this kernel.
struct Feasibility {
  bool feasible = true;
  /// Pipeline-mode point whose initiation interval is bound by a
  /// cross-work-item recurrence (still feasible, but RecMII-limited).
  bool recMiiBound = false;
  /// The race verifier found a concrete data race for this launch. Racy
  /// kernels stay feasible (the model still estimates them) but the verdict
  /// travels with every design point so DSE consumers can filter.
  bool racy = false;
  std::string reason;  ///< set when infeasible or RecMII-bound
  /// Stable rule id of the verdict ("lint-errors", "reqd-work-group-size",
  /// "local-out-of-bounds", "cross-wi-dependence"); empty when the point is
  /// feasible and unannotated. Every DSE prune is attributable to one rule.
  std::string rule;
};

/// Checks a design point against the report: lint errors make every point
/// infeasible, a reqd_work_group_size mismatch makes that point infeasible,
/// a local-memory access proven out of bounds under the candidate
/// work-group size makes that point infeasible, and pipeline-mode points
/// with cross-work-item dependences are flagged RecMII-bound.
Feasibility checkDesign(const LintReport& report,
                        const model::DesignPoint& design);

/// Human-readable multi-line rendering.
std::string renderText(const LintReport& report);
/// JSON rendering (single object; see README for the schema).
std::string renderJson(const LintReport& report);

}  // namespace flexcl::analysis
