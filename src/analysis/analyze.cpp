#include "analysis/analyze.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "analysis/pass.h"
#include "ir/verifier.h"

namespace flexcl::analysis {
namespace {

// ---------------------------------------------------------------------------
// verifier: the extended IR invariants, re-reported as lint findings
// ---------------------------------------------------------------------------

class VerifierPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "verifier"; }

  void run(PassContext& ctx) override {
    for (ir::VerifierIssue& issue : ir::verifyFunctionIssues(ctx.fn)) {
      LintFinding f;
      f.pass = name();
      f.rule = std::move(issue.rule);
      f.severity = issue.severity;
      f.loc = issue.loc;
      f.message = std::move(issue.message);
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// trip-count: loops the model cannot bound statically
// ---------------------------------------------------------------------------

class TripCountPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "trip-count"; }

  void run(PassContext& ctx) override {
    ctx.report.loopCount = ctx.summary.loops.size();
    for (const LoopFact& loop : ctx.summary.loops) {
      if (loop.staticTrip >= 0) continue;
      ++ctx.report.unresolvedTripLoops;
      LintFinding f;
      f.pass = name();
      f.rule = "unresolved-trip-count";
      f.severity = DiagSeverity::Warning;
      f.loc = loop.loc;
      f.loopId = loop.loopId;
      f.message = "loop " + std::to_string(loop.loopId) +
                  ": trip count not statically resolvable; without a profile "
                  "the model falls back to fallbackTripCount = 16";
      if (loop.dependsOnId) {
        f.message += " (trip count varies per work-item)";
      } else if (loop.condSymbolic) {
        f.message += " (condition becomes concrete once launch arguments are "
                     "known)";
      } else {
        f.message += " (condition is data-dependent)";
      }
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// barrier: barriers under divergent control flow
// ---------------------------------------------------------------------------

class BarrierPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "barrier"; }

  void run(PassContext& ctx) override {
    ctx.report.usesBarrier = !ctx.summary.barriers.empty();
    for (const BarrierFact& barrier : ctx.summary.barriers) {
      if (!barrier.condMentionsId && !barrier.condOpaque) continue;
      LintFinding f;
      f.pass = name();
      f.rule = "barrier-divergence";
      f.severity = DiagSeverity::Warning;
      f.loc = barrier.loc;
      f.message =
          barrier.condMentionsId
              ? "barrier under work-item-dependent control flow: work-items "
                "of one group can disagree on reaching it"
              : "barrier under data-dependent control flow: divergence cannot "
                "be ruled out statically";
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// local-dependence: Figure 3's B[tid-1] recurrence, found statically
// ---------------------------------------------------------------------------

class LocalDependencePass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "local-dependence"; }

  void run(PassContext& ctx) override {
    // Local accesses with offsets affine in the local id: evaluate the
    // symbolic offset at three consecutive lid0 values; a store by work-item
    // t whose cell is loaded by work-item t+d (constant d > 0) is the
    // pipeline recurrence the RecMII machinery prices.
    struct Affine {
      const MemAccessInfo* access;
      std::int64_t coeff;
      std::int64_t intercept;
    };
    std::vector<Affine> stores;
    std::vector<Affine> loads;

    for (const MemAccessInfo& access : ctx.summary.accesses) {
      if (access.space != ir::AddressSpace::Local) continue;
      if (access.base != PtrBase::LocalAlloca &&
          access.base != PtrBase::LocalArg) {
        continue;
      }
      auto f = [&](std::int64_t t) { return evalAtLid0(access, t); };
      const auto f0 = f(8), f1 = f(9), f2 = f(10);
      if (!f0 || !f1 || !f2) continue;
      if (*f2 - *f1 != *f1 - *f0) continue;  // not affine in lid0
      const std::int64_t coeff = *f1 - *f0;
      Affine a{&access, coeff, *f0 - 8 * coeff};
      (access.isWrite ? stores : loads).push_back(a);
    }

    std::unordered_set<std::uint64_t> seen;
    for (const Affine& s : stores) {
      for (const Affine& l : loads) {
        if (s.access->base != l.access->base ||
            s.access->baseIndex != l.access->baseIndex) {
          continue;
        }
        if (s.coeff != l.coeff || s.coeff == 0) continue;
        const std::int64_t delta = s.intercept - l.intercept;
        if (delta % s.coeff != 0) continue;
        const std::int64_t distance = delta / s.coeff;
        if (distance <= 0 || distance > 256) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(s.access->instId) << 32) |
            l.access->instId;
        if (!seen.insert(key).second) continue;

        CrossWiDependence dep;
        dep.storeInstId = s.access->instId;
        dep.loadInstId = l.access->instId;
        dep.distance = distance;
        dep.loc = l.access->loc;
        ctx.report.crossWiDeps.push_back(dep);

        LintFinding f;
        f.pass = name();
        f.rule = "cross-wi-dependence";
        f.severity = DiagSeverity::Warning;
        f.loc = l.access->loc;
        f.instId = static_cast<int>(l.access->instId);
        f.message = "work-item t+" + std::to_string(distance) +
                    " reads the local-memory cell work-item t stores "
                    "(store inst#" + std::to_string(s.access->instId) +
                    "): pipeline-mode design points are RecMII-bound";
        ctx.report.findings.push_back(std::move(f));
      }
    }
  }

 private:
  static std::optional<std::int64_t> evalAtLid0(const MemAccessInfo& access,
                                                std::int64_t t) {
    SymBinding bind;
    bind.localSize = {1024, 1, 1};
    bind.globalSize = {1048576, 1, 1};
    bind.numGroups = {1024, 1, 1};
    bind.localId = {t, 0, 0};
    bind.globalId = {t, 0, 0};
    return symEval(access.offset.get(), bind);
  }
};

// ---------------------------------------------------------------------------
// access-pattern: static Table 1 classification + profiled cross-check
// ---------------------------------------------------------------------------

class AccessPatternPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "access-pattern"; }

  void run(PassContext& ctx) override {
    std::unordered_set<unsigned> sites;
    for (const MemAccessInfo& access : ctx.summary.accesses) {
      if (access.space == ir::AddressSpace::Global ||
          access.space == ir::AddressSpace::Constant) {
        sites.insert(access.instId);
      }
    }
    ctx.report.globalAccessSites = sites.size();
    if (!ctx.options.range) return;

    CrossCheckOptions opts = ctx.options.patterns;
    opts.groupsToExpand = ctx.options.groupsToProfile;
    static const std::vector<interp::KernelArg> kNoArgs;
    const auto& args = ctx.options.args ? *ctx.options.args : kNoArgs;
    ctx.report.patterns = crossCheckPatterns(ctx.summary, *ctx.options.range,
                                             args, ctx.profile, opts);
    ctx.report.crossChecked = ctx.profile != nullptr;
    const PatternCrossCheck& result = ctx.report.patterns;

    for (const InstPattern& ip : result.staticByInst) {
      if (ip.majority() >= 0) {
        ++ctx.report.classifiedSites;
      } else if (ip.opaqueEvents > 0) {
        LintFinding f;
        f.pass = name();
        f.rule = "unclassified-access";
        f.severity = DiagSeverity::Note;
        f.loc = ip.loc;
        f.instId = static_cast<int>(ip.instId);
        f.message = "access offset is not statically resolvable (indirect or "
                    "data-dependent indexing); pattern comes from profiling "
                    "only";
        ctx.report.findings.push_back(std::move(f));
      }
    }

    if (result.truncated) {
      LintFinding f;
      f.pass = name();
      f.rule = "expansion-truncated";
      f.severity = DiagSeverity::Warning;
      f.message = "static access-stream expansion hit a safety cap; static "
                  "pattern counts are partial";
      ctx.report.findings.push_back(std::move(f));
    }

    for (const PatternDivergence& div : result.divergences) {
      LintFinding f;
      f.pass = name();
      f.rule = "pattern-divergence";
      f.severity = DiagSeverity::Warning;
      f.loc = div.loc;
      f.instId = static_cast<int>(div.instId);
      const char* staticName =
          div.staticPattern >= 0
              ? dram::patternName(
                    static_cast<dram::AccessPattern>(div.staticPattern))
              : "unclassified";
      const char* profiledName =
          div.profiledPattern >= 0
              ? dram::patternName(
                    static_cast<dram::AccessPattern>(div.profiledPattern))
              : "unclassified";
      f.message = "static classification " + std::string(staticName) +
                  " disagrees with profiled " + profiledName + " over " +
                  std::to_string(div.profiledEvents) + " event(s)";
      if (!div.offsetText.empty()) f.message += "; offset " + div.offsetText;
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

}  // namespace

LintReport runLintPasses(const ir::Function& fn, const LintOptions& options) {
  LintReport report;
  report.kernelName = fn.name();
  report.reqdWorkGroupSize = fn.reqdWorkGroupSize;

  const KernelSummary summary = summarizeKernel(fn);

  interp::KernelProfile profile;
  const interp::KernelProfile* profilePtr = nullptr;
  if (options.profileCrossCheck && options.range && options.args &&
      options.buffers) {
    interp::ProfileOptions po;
    po.groupsToProfile = options.groupsToProfile;
    po.captureLocalTrace = false;
    profile = interp::profileKernel(fn, *options.range, *options.args,
                                    *options.buffers, po);
    if (profile.ok) profilePtr = &profile;
  }

  PassContext ctx{fn, summary, options, profilePtr, report};
  PassManager pm;
  pm.add(std::make_unique<VerifierPass>());
  pm.add(std::make_unique<TripCountPass>());
  pm.add(std::make_unique<BarrierPass>());
  pm.add(std::make_unique<LocalDependencePass>());
  pm.add(std::make_unique<AccessPatternPass>());
  pm.run(ctx);
  return report;
}

}  // namespace flexcl::analysis
