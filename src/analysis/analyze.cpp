#include "analysis/analyze.h"

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "analysis/dataflow/dependence.h"
#include "analysis/dataflow/trip_count.h"
#include "analysis/pass.h"
#include "analysis/raceverify/raceverify.h"
#include "analysis/staticprof/staticprof.h"
#include "ir/verifier.h"

namespace flexcl::analysis {
namespace {

/// Within-group-varying coefficient of `form` along id dimension `d`:
/// gid_d = group_d·lsz_d + lid_d, so the part of the form that can differ
/// between work-items of one group is (coeff(gid_d) + coeff(lid_d))·lid_d.
std::int64_t lidVaryingCoeff(const dataflow::AffineForm& form, int d) {
  return form.coeffOf(dataflow::LeafKey{Sym::GlobalId, d}) +
         form.coeffOf(dataflow::LeafKey{Sym::LocalId, d});
}

/// True when `form` takes one value per work-group: the per-dimension
/// LocalId contributions cancel and every remaining leaf is group-constant
/// (GroupId, sizes, scalar arguments — not LoopIter, whose value work-items
/// of a group need not agree on under divergence).
bool formGroupUniform(const dataflow::AffineForm& form) {
  for (int d = 0; d < 3; ++d) {
    if (lidVaryingCoeff(form, d) != 0) return false;
  }
  for (const dataflow::AffineTerm& t : form.terms) {
    switch (t.leaf.sym) {
      case Sym::GlobalId:
      case Sym::LocalId:  // cancelled pairwise per dimension above
      case Sym::GroupId:
      case Sym::GlobalSize:
      case Sym::LocalSize:
      case Sym::NumGroups:
      case Sym::ScalarArg: break;
      default: return false;
    }
  }
  return true;
}

/// Uniformity of one id-dependent condition. Barrier divergence is a
/// per-group property, so three increasingly precise tiers all discharge it:
/// (1) the condition's interval collapses to a point for the whole launch;
/// (2) both comparison operands linearize and their difference is affinely
/// group-uniform (e.g. `gid - lid`, the group base); (3) a per-group sweep —
/// pin GroupId and window GlobalId to each group in turn and require a point
/// interval group by group (boundary conditions like `gid < k` where k falls
/// between groups).
bool condUniformPerGroup(const SymExpr* c, const dataflow::LeafRanges& ranges) {
  if (dataflow::rangeOfSym(c, ranges).isPoint()) return true;

  if (c->op == SymExpr::Op::Cmp) {
    const auto fa = dataflow::linearize(c->a.get());
    const auto fb = dataflow::linearize(c->b.get());
    if (fa && fb) {
      if (const auto diff = dataflow::subForms(*fa, *fb);
          diff && formGroupUniform(*diff)) {
        return true;
      }
    }
  }

  std::array<std::int64_t, 3> lsz{}, ngroups{};
  std::int64_t total = 1;
  for (int d = 0; d < 3; ++d) {
    const dataflow::Interval l = ranges.of({Sym::LocalSize, d});
    const dataflow::Interval n = ranges.of({Sym::NumGroups, d});
    if (!l.isPoint() || !n.isPoint() || l.lo < 1 || n.lo < 1) return false;
    lsz[static_cast<std::size_t>(d)] = l.lo;
    ngroups[static_cast<std::size_t>(d)] = n.lo;
    total *= n.lo;
  }
  constexpr std::int64_t kGroupSweepCap = 4096;
  if (total > kGroupSweepCap) return false;
  for (std::int64_t g = 0; g < total; ++g) {
    std::array<std::int64_t, 3> gid;
    gid[0] = g % ngroups[0];
    gid[1] = (g / ngroups[0]) % ngroups[1];
    gid[2] = g / (ngroups[0] * ngroups[1]);
    dataflow::LeafRanges perGroup = ranges;
    for (int d = 0; d < 3; ++d) {
      const std::int64_t base = gid[static_cast<std::size_t>(d)] *
                                lsz[static_cast<std::size_t>(d)];
      perGroup.set(Sym::GroupId, d,
                   dataflow::Interval::point(gid[static_cast<std::size_t>(d)]));
      perGroup.set(Sym::GlobalId, d,
                   dataflow::Interval::range(
                       base, base + lsz[static_cast<std::size_t>(d)] - 1));
    }
    if (!dataflow::rangeOfSym(c, perGroup).isPoint()) return false;
  }
  return true;
}

/// True when every enclosing condition of `fact` provably evaluates to one
/// value per work-group: opaque conditions fail, launch-constant conditions
/// (no id leaves) pass, and id-dependent conditions pass only when
/// condUniformPerGroup proves them group-uniform.
bool condsProvablyUniform(const BarrierFact& fact,
                          const dataflow::LeafRanges& ranges) {
  if (fact.conds.empty()) return false;
  for (const SymExprPtr& c : fact.conds) {
    if (!c || symIsOpaque(c.get())) return false;
    if (!symMentions(c.get(), Sym::GlobalId) &&
        !symMentions(c.get(), Sym::LocalId)) {
      continue;  // launch-constant: every work-item computes the same value
    }
    if (!condUniformPerGroup(c.get(), ranges)) return false;
  }
  return true;
}

/// True when every leaf of `e` has a bounded interval in `ranges` and the
/// tree contains no Opaque node — i.e. a top result from rangeOfSym can only
/// come from interval-arithmetic overflow, not from missing information.
bool allLeavesBounded(const SymExpr* e, const dataflow::LeafRanges& ranges) {
  if (!e) return false;
  switch (e->op) {
    case SymExpr::Op::Const: return true;
    case SymExpr::Op::Opaque: return false;
    case SymExpr::Op::Leaf:
      return !ranges.of(dataflow::LeafKey{e->sym, e->index}).isTop();
    default: break;
  }
  if (e->a && !allLeavesBounded(e->a.get(), ranges)) return false;
  if (e->b && !allLeavesBounded(e->b.get(), ranges)) return false;
  if (e->c && !allLeavesBounded(e->c.get(), ranges)) return false;
  return true;
}

/// Marks which accesses can execute at all under `ranges`: subtrees behind a
/// condition that provably evaluates to a constant false (or loops with a
/// resolved trip count of zero) are dead, so bounds findings never fire on
/// them.
void markLive(const AccessTreeNode& node, const dataflow::LeafRanges& ranges,
              bool enabled, const std::vector<std::int64_t>& tripOf,
              std::vector<char>& live) {
  switch (node.kind) {
    case AccessTreeNode::Kind::Access:
      if (enabled && node.accessIndex >= 0 &&
          static_cast<std::size_t>(node.accessIndex) < live.size()) {
        live[static_cast<std::size_t>(node.accessIndex)] = 1;
      }
      break;
    case AccessTreeNode::Kind::Cond: {
      bool thenEnabled = enabled;
      bool elseEnabled = enabled;
      if (node.cond && !symIsOpaque(node.cond.get())) {
        const dataflow::Interval iv =
            dataflow::rangeOfSym(node.cond.get(), ranges);
        if (iv.isPoint()) (iv.lo != 0 ? elseEnabled : thenEnabled) = false;
      }
      const std::size_t split = std::min(node.thenCount, node.children.size());
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        markLive(node.children[i], ranges, i < split ? thenEnabled : elseEnabled,
                 tripOf, live);
      }
      break;
    }
    case AccessTreeNode::Kind::Loop: {
      bool bodyEnabled = enabled;
      if (node.loopId >= 0 &&
          static_cast<std::size_t>(node.loopId) < tripOf.size() &&
          tripOf[static_cast<std::size_t>(node.loopId)] == 0) {
        bodyEnabled = false;
      }
      for (const AccessTreeNode& child : node.children) {
        markLive(child, ranges, bodyEnabled, tripOf, live);
      }
      break;
    }
    case AccessTreeNode::Kind::Barrier:
    case AccessTreeNode::Kind::Return:
      break;  // no accesses of their own
  }
}

// ---------------------------------------------------------------------------
// verifier: the extended IR invariants, re-reported as lint findings
// ---------------------------------------------------------------------------

class VerifierPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "verifier"; }

  void run(PassContext& ctx) override {
    for (ir::VerifierIssue& issue : ir::verifyFunctionIssues(ctx.fn)) {
      LintFinding f;
      f.pass = name();
      f.rule = std::move(issue.rule);
      f.severity = issue.severity;
      f.loc = issue.loc;
      f.message = std::move(issue.message);
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// trip-count: loops the model cannot bound statically
// ---------------------------------------------------------------------------

class TripCountPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "trip-count"; }

  void run(PassContext& ctx) override {
    ctx.report.loopCount = ctx.summary.loops.size();
    for (const LoopFact& loop : ctx.summary.loops) {
      if (loop.staticTrip >= 0) continue;
      // The dataflow tier resolves launch-constant conditions without the
      // profiler; such loops are no longer fallback-bound.
      if (ctx.staticTrips && loop.loopId >= 0 &&
          static_cast<std::size_t>(loop.loopId) < ctx.staticTrips->size() &&
          (*ctx.staticTrips)[static_cast<std::size_t>(loop.loopId)] >= 0) {
        continue;
      }
      ++ctx.report.unresolvedTripLoops;
      LintFinding f;
      f.pass = name();
      f.rule = "unresolved-trip-count";
      f.severity = DiagSeverity::Warning;
      f.loc = loop.loc;
      f.loopId = loop.loopId;
      f.message = "loop " + std::to_string(loop.loopId) +
                  ": trip count not statically resolvable; without a profile "
                  "the model falls back to fallbackTripCount = 16";
      if (loop.dependsOnId) {
        f.message += " (trip count varies per work-item)";
      } else if (loop.condSymbolic) {
        f.message += " (condition becomes concrete once launch arguments are "
                     "known)";
      } else {
        f.message += " (condition is data-dependent)";
      }
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// barrier: barriers under divergent control flow
// ---------------------------------------------------------------------------

class BarrierPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "barrier"; }

  void run(PassContext& ctx) override {
    ctx.report.usesBarrier = !ctx.summary.barriers.empty();
    for (const BarrierFact& barrier : ctx.summary.barriers) {
      if (!barrier.condMentionsId && !barrier.condOpaque) continue;
      // Divergence discharge: under trusted geometry a branch whose condition
      // provably takes one value group-wide cannot diverge (the uniform-branch
      // pass reports the discharge as a note).
      if (ctx.rangesTrusted && ctx.ranges &&
          condsProvablyUniform(barrier, *ctx.ranges)) {
        continue;
      }
      LintFinding f;
      f.pass = name();
      f.rule = "barrier-divergence";
      f.severity = DiagSeverity::Warning;
      f.loc = barrier.loc;
      f.message =
          barrier.condMentionsId
              ? "barrier under work-item-dependent control flow: work-items "
                "of one group can disagree on reaching it"
              : "barrier under data-dependent control flow: divergence cannot "
                "be ruled out statically";
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// local-dependence: Figure 3's B[tid-1] recurrence, found statically
// ---------------------------------------------------------------------------

class LocalDependencePass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "local-dependence"; }

  void run(PassContext& ctx) override {
    // Local accesses with exactly linearizable offsets: the GCD/Banerjee
    // tester solves for the constant work-item distance d > 0 at which a
    // store by work-item t and a load by work-item t+d hit the same cell —
    // the pipeline recurrence the RecMII machinery prices.
    struct Site {
      const MemAccessInfo* access;
      dataflow::AccessForm form;
    };
    std::vector<Site> stores;
    std::vector<Site> loads;

    SymBinding partial;  // fold known scalar arguments into the constant
    if (ctx.options.args) {
      for (std::size_t i = 0; i < ctx.options.args->size(); ++i) {
        const interp::KernelArg& a = (*ctx.options.args)[i];
        if (!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int) {
          partial.scalarArgs[static_cast<int>(i)] = a.scalar.i;
        }
      }
    }

    for (const MemAccessInfo& access : ctx.summary.accesses) {
      if (access.space != ir::AddressSpace::Local) continue;
      if (access.base != PtrBase::LocalAlloca &&
          access.base != PtrBase::LocalArg) {
        continue;
      }
      auto form = dataflow::linearize(access.offset.get(), &partial);
      if (!form) continue;
      Site s{&access, dataflow::AccessForm{std::move(*form), access.size}};
      (access.isWrite ? stores : loads).push_back(std::move(s));
    }

    const dataflow::Interval lsz0 =
        ctx.ranges->of(dataflow::LeafKey{Sym::LocalSize, 0});
    const std::int64_t maxDistance = lsz0.isPoint() ? lsz0.lo - 1 : 1023;
    if (maxDistance < 1) return;

    std::unordered_set<std::uint64_t> seen;
    for (const Site& s : stores) {
      for (const Site& l : loads) {
        if (s.access->base != l.access->base ||
            s.access->baseIndex != l.access->baseIndex) {
          continue;
        }
        const dataflow::DepResult r = dataflow::testCrossWorkItem(
            s.form, l.form, *ctx.ranges, maxDistance);
        if (r.kind != dataflow::DepKind::Distance) continue;
        const std::int64_t distance = r.distance;
        if (distance <= 0 || distance > 256) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(s.access->instId) << 32) |
            l.access->instId;
        if (!seen.insert(key).second) continue;

        CrossWiDependence dep;
        dep.storeInstId = s.access->instId;
        dep.loadInstId = l.access->instId;
        dep.distance = distance;
        dep.loc = l.access->loc;
        ctx.report.crossWiDeps.push_back(dep);

        LintFinding f;
        f.pass = name();
        f.rule = "cross-wi-dependence";
        f.severity = DiagSeverity::Warning;
        f.loc = l.access->loc;
        f.instId = static_cast<int>(l.access->instId);
        f.message = "work-item t+" + std::to_string(distance) +
                    " reads the local-memory cell work-item t stores "
                    "(store inst#" + std::to_string(s.access->instId) +
                    "): pipeline-mode design points are RecMII-bound";
        ctx.report.findings.push_back(std::move(f));
      }
    }
  }
};

// ---------------------------------------------------------------------------
// uniform-branch: barrier divergence discharged by value-range analysis
// ---------------------------------------------------------------------------

class UniformBranchPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "uniform-branch"; }

  void run(PassContext& ctx) override {
    if (!ctx.rangesTrusted || !ctx.ranges) return;
    for (const BarrierFact& barrier : ctx.summary.barriers) {
      if (!barrier.condMentionsId && !barrier.condOpaque) continue;
      if (!condsProvablyUniform(barrier, *ctx.ranges)) continue;
      LintFinding f;
      f.pass = name();
      f.rule = "provably-uniform-branch";
      f.severity = DiagSeverity::Note;
      f.loc = barrier.loc;
      f.message =
          "barrier sits under an id-dependent branch whose condition is "
          "provably uniform for this launch geometry: divergence discharged";
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// access-bounds: byte-extent facts + provable out-of-bounds global accesses
// ---------------------------------------------------------------------------

class AccessBoundsPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "access-bounds"; }

  void run(PassContext& ctx) override {
    SymBinding partial;
    if (ctx.options.args) {
      for (std::size_t i = 0; i < ctx.options.args->size(); ++i) {
        const interp::KernelArg& a = (*ctx.options.args)[i];
        if (!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int) {
          partial.scalarArgs[static_cast<int>(i)] = a.scalar.i;
        }
      }
    }

    // Resolved trip per loopId: induction tier first, then the dataflow tier.
    std::vector<std::int64_t> tripOf(
        static_cast<std::size_t>(ctx.fn.loopCount), -1);
    for (const LoopFact& loop : ctx.summary.loops) {
      if (loop.loopId >= 0 &&
          static_cast<std::size_t>(loop.loopId) < tripOf.size()) {
        tripOf[static_cast<std::size_t>(loop.loopId)] = loop.staticTrip;
      }
    }
    if (ctx.staticTrips) {
      for (std::size_t i = 0;
           i < tripOf.size() && i < ctx.staticTrips->size(); ++i) {
        if (tripOf[i] < 0) tripOf[i] = (*ctx.staticTrips)[i];
      }
    }

    // Range environment with resolved loop counters bound.
    dataflow::LeafRanges ranges = *ctx.ranges;
    for (std::size_t i = 0; i < tripOf.size(); ++i) {
      if (tripOf[i] >= 1) {
        ranges.set(Sym::LoopIter, static_cast<int>(i),
                   dataflow::Interval::range(0, tripOf[i] - 1));
      }
    }

    std::vector<char> live(ctx.summary.accesses.size(), 0);
    for (const AccessTreeNode& root : ctx.summary.roots) {
      markLive(root, ranges, true, tripOf, live);
    }

    for (std::size_t idx = 0; idx < ctx.summary.accesses.size(); ++idx) {
      const MemAccessInfo& access = ctx.summary.accesses[idx];
      if (access.base != PtrBase::BufferArg &&
          access.base != PtrBase::LocalArg &&
          access.base != PtrBase::LocalAlloca) {
        continue;
      }
      auto form = dataflow::linearize(access.offset.get(), &partial);
      if (!form) continue;

      AccessBoundFact fact;
      fact.instId = access.instId;
      fact.loc = access.loc;
      fact.isWrite = access.isWrite;
      fact.space = access.space;
      fact.baseIndex = access.baseIndex;
      fact.offset = *form;
      fact.bytes = access.size;
      fact.divergent = access.divergent;
      fact.extent = extentOf(ctx, access);
      fact.localIdOnly = true;
      for (const dataflow::AffineTerm& t : form->terms) {
        if (t.leaf.sym != Sym::LocalId) fact.localIdOnly = false;
      }
      ctx.report.accessBounds.push_back(fact);

      // The finding itself needs trusted geometry, a known extent and an
      // attainable extreme (otherwise a wide interval is not a proof).
      if (!ctx.rangesTrusted || fact.extent < 0 || access.divergent ||
          !live[idx]) {
        continue;
      }
      if (access.space != ir::AddressSpace::Global &&
          access.space != ir::AddressSpace::Constant) {
        continue;
      }
      if (!extremesAttained(*form, ranges, tripOf)) continue;
      const dataflow::Interval iv = dataflow::rangeOf(*form, ranges);
      if (iv.isTop()) continue;
      const std::int64_t bytes = static_cast<std::int64_t>(access.size);
      if (iv.lo >= 0 && iv.hi + bytes <= fact.extent) continue;

      LintFinding f;
      f.pass = name();
      f.rule = "global-out-of-bounds";
      f.severity = DiagSeverity::Warning;
      f.loc = access.loc;
      f.instId = static_cast<int>(access.instId);
      f.message = std::string(access.isWrite ? "store" : "load") +
                  " reaches byte offsets [" + std::to_string(iv.lo) + ", " +
                  std::to_string(iv.hi + bytes) + ") of buffer argument " +
                  std::to_string(access.baseIndex) + " (extent " +
                  std::to_string(fact.extent) + " bytes)";
      ctx.report.findings.push_back(std::move(f));
    }
  }

 private:
  /// Byte extent of the access's base, -1 when unknown.
  static std::int64_t extentOf(const PassContext& ctx,
                               const MemAccessInfo& access) {
    if (access.base == PtrBase::BufferArg) {
      if (!ctx.options.args || !ctx.options.buffers) return -1;
      const auto argIdx = static_cast<std::size_t>(access.baseIndex);
      if (argIdx >= ctx.options.args->size()) return -1;
      const interp::KernelArg& arg = (*ctx.options.args)[argIdx];
      if (!arg.isBuffer || arg.bufferIndex < 0) return -1;
      const auto bufIdx = static_cast<std::size_t>(arg.bufferIndex);
      if (bufIdx >= ctx.options.buffers->size()) return -1;
      return static_cast<std::int64_t>((*ctx.options.buffers)[bufIdx].size());
    }
    if (access.base == PtrBase::LocalAlloca) {
      const auto i = static_cast<std::size_t>(access.baseIndex);
      if (i >= ctx.fn.localAllocas.size()) return -1;
      const ir::Instruction* alloca = ctx.fn.localAllocas[i];
      if (!alloca || !alloca->allocaType) return -1;
      return static_cast<std::int64_t>(alloca->allocaType->sizeInBytes());
    }
    return -1;  // LocalArg: extent set by the host, unknown statically
  }

  /// True when the form's interval extremes are realised by actual
  /// executions: every leaf is either a point, a fully swept id dimension or
  /// a resolved loop counter — and global ids never mix with local/group ids
  /// (those leaves are correlated, so independent extremes overshoot).
  static bool extremesAttained(const dataflow::AffineForm& form,
                               const dataflow::LeafRanges& ranges,
                               const std::vector<std::int64_t>& tripOf) {
    bool usesGlobalId = false;
    bool usesLocalOrGroup = false;
    for (const dataflow::AffineTerm& t : form.terms) {
      const dataflow::Interval iv = ranges.of(t.leaf);
      if (iv.isTop()) return false;
      if (iv.isPoint()) continue;
      switch (t.leaf.sym) {
        case Sym::GlobalId: usesGlobalId = true; break;
        case Sym::LocalId:
        case Sym::GroupId: usesLocalOrGroup = true; break;
        case Sym::LoopIter: {
          const auto i = static_cast<std::size_t>(t.leaf.index);
          if (i >= tripOf.size() || tripOf[i] < 1) return false;
          break;
        }
        default: return false;  // non-point size/arg leaf: not attained
      }
    }
    return !(usesGlobalId && usesLocalOrGroup);
  }
};

// ---------------------------------------------------------------------------
// loop-overflow: loop-bound arithmetic that can exceed int64
// ---------------------------------------------------------------------------

class LoopBoundOverflowPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "loop-overflow"; }

  void run(PassContext& ctx) override {
    if (!ctx.ranges) return;
    for (const AccessTreeNode& root : ctx.summary.roots) walk(ctx, root);
  }

 private:
  void walk(PassContext& ctx, const AccessTreeNode& node) {
    if (node.kind == AccessTreeNode::Kind::Loop && node.loopCond &&
        !symIsOpaque(node.loopCond.get())) {
      check(ctx, node);
    }
    for (const AccessTreeNode& child : node.children) walk(ctx, child);
  }

  void check(PassContext& ctx, const AccessTreeNode& node) {
    // Bind the loop's own counter to the scan window, then evaluate the
    // comparison operands: a top interval whose leaves are all bounded can
    // only come from interval-arithmetic overflow.
    dataflow::LeafRanges ranges = *ctx.ranges;
    ranges.set(Sym::LoopIter, node.loopId,
               dataflow::Interval::range(
                   0, dataflow::TripCountConfig{}.maxStaticTrips));
    const SymExpr* cond = node.loopCond.get();
    const bool overflowed =
        cond->op == SymExpr::Op::Cmp
            ? sideOverflows(cond->a.get(), ranges) ||
                  sideOverflows(cond->b.get(), ranges)
            : sideOverflows(cond, ranges);
    if (!overflowed) return;

    LintFinding f;
    f.pass = name();
    f.rule = "loop-bound-overflow";
    f.severity = DiagSeverity::Warning;
    f.loc = node.loopId >= 0 ? locOf(ctx, node.loopId) : SourceLocation{};
    f.loopId = node.loopId;
    f.message = "loop " + std::to_string(node.loopId) +
                ": bound expression can overflow 64-bit arithmetic for "
                "in-range inputs; the modelled trip count may be wrong";
    ctx.report.findings.push_back(std::move(f));
  }

  static bool sideOverflows(const SymExpr* e,
                            const dataflow::LeafRanges& ranges) {
    if (!e) return false;
    return allLeavesBounded(e, ranges) &&
           dataflow::rangeOfSym(e, ranges).isTop();
  }

  static SourceLocation locOf(const PassContext& ctx, int loopId) {
    for (const LoopFact& loop : ctx.summary.loops) {
      if (loop.loopId == loopId) return loop.loc;
    }
    return {};
  }
};

// ---------------------------------------------------------------------------
// access-pattern: static Table 1 classification + profiled cross-check
// ---------------------------------------------------------------------------

class AccessPatternPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "access-pattern"; }

  void run(PassContext& ctx) override {
    std::unordered_set<unsigned> sites;
    for (const MemAccessInfo& access : ctx.summary.accesses) {
      if (access.space == ir::AddressSpace::Global ||
          access.space == ir::AddressSpace::Constant) {
        sites.insert(access.instId);
      }
    }
    ctx.report.globalAccessSites = sites.size();
    if (!ctx.options.range) return;

    CrossCheckOptions opts = ctx.options.patterns;
    opts.groupsToExpand = ctx.options.groupsToProfile;
    static const std::vector<interp::KernelArg> kNoArgs;
    const auto& args = ctx.options.args ? *ctx.options.args : kNoArgs;
    ctx.report.patterns = crossCheckPatterns(ctx.summary, *ctx.options.range,
                                             args, ctx.profile, opts);
    ctx.report.crossChecked = ctx.profile != nullptr;
    const PatternCrossCheck& result = ctx.report.patterns;

    for (const InstPattern& ip : result.staticByInst) {
      if (ip.majority() >= 0) {
        ++ctx.report.classifiedSites;
      } else if (ip.opaqueEvents > 0) {
        LintFinding f;
        f.pass = name();
        f.rule = "unclassified-access";
        f.severity = DiagSeverity::Note;
        f.loc = ip.loc;
        f.instId = static_cast<int>(ip.instId);
        f.message = "access offset is not statically resolvable (indirect or "
                    "data-dependent indexing); pattern comes from profiling "
                    "only";
        ctx.report.findings.push_back(std::move(f));
      }
    }

    if (result.truncated) {
      LintFinding f;
      f.pass = name();
      f.rule = "expansion-truncated";
      f.severity = DiagSeverity::Warning;
      f.message = "static access-stream expansion hit a safety cap; static "
                  "pattern counts are partial";
      ctx.report.findings.push_back(std::move(f));
    }

    for (const PatternDivergence& div : result.divergences) {
      LintFinding f;
      f.pass = name();
      f.rule = "pattern-divergence";
      f.severity = DiagSeverity::Warning;
      f.loc = div.loc;
      f.instId = static_cast<int>(div.instId);
      const char* staticName =
          div.staticPattern >= 0
              ? dram::patternName(
                    static_cast<dram::AccessPattern>(div.staticPattern))
              : "unclassified";
      const char* profiledName =
          div.profiledPattern >= 0
              ? dram::patternName(
                    static_cast<dram::AccessPattern>(div.profiledPattern))
              : "unclassified";
      f.message = "static classification " + std::string(staticName) +
                  " disagrees with profiled " + profiledName + " over " +
                  std::to_string(div.profiledEvents) + " event(s)";
      if (!div.offsetText.empty()) f.message += "; offset " + div.offsetText;
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// race: verifier verdicts as findings (DESIGN.md §15)
// ---------------------------------------------------------------------------

SourceLocation locOfInst(const KernelSummary& summary, unsigned instId) {
  for (const MemAccessInfo& access : summary.accesses) {
    if (access.instId == instId) return access.loc;
  }
  return {};
}

class RacePass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "race"; }

  void run(PassContext& ctx) override {
    if (!ctx.race) return;
    const raceverify::RaceVerdict& v = *ctx.race;
    ctx.report.raceVerdict = v.name();
    ctx.report.raceReason = v.reason;
    ctx.report.racePairsChecked = v.pairsChecked;
    ctx.report.raceRacyPairs = v.racyPairs;
    ctx.report.raceUnknownPairs = v.unknownPairs;
    ctx.report.raceBarrierIntervals = v.barrierIntervals;
    for (const raceverify::PairResult& pair : v.pairs) {
      LintFinding f;
      f.pass = name();
      f.loc = locOfInst(ctx.summary, pair.instB);
      f.instId = static_cast<int>(pair.instB);
      if (pair.kind == raceverify::RaceVerdictKind::Racy && pair.witness) {
        const std::string witness = pair.witness->str();
        ctx.report.raceWitnesses.push_back(witness);
        f.rule = "data-race";
        f.severity = DiagSeverity::Warning;
        f.message = "data race between inst#" + std::to_string(pair.instA) +
                    " and inst#" + std::to_string(pair.instB) + ": " + witness;
      } else {
        f.rule = "race-unknown";
        f.severity = DiagSeverity::Note;
        f.message = "access pair inst#" + std::to_string(pair.instA) +
                    " / inst#" + std::to_string(pair.instB) +
                    " neither proven race-free nor witnessed racy: " +
                    pair.reason;
      }
      ctx.report.findings.push_back(std::move(f));
    }
  }
};

// ---------------------------------------------------------------------------
// barrier-interval: the epoch structure the race verifier partitioned by
// ---------------------------------------------------------------------------

class BarrierIntervalPass final : public Pass {
 public:
  [[nodiscard]] const char* name() const override { return "barrier-interval"; }

  void run(PassContext& ctx) override {
    if (!ctx.race || ctx.summary.barriers.empty()) return;
    const raceverify::RaceVerdict& v = *ctx.race;
    LintFinding f;
    f.pass = name();
    f.rule = "barrier-intervals";
    f.severity = DiagSeverity::Note;
    f.loc = ctx.summary.barriers.front().loc;
    if (v.barrierIntervals > 0) {
      f.message = "one work-item passes through " +
                  std::to_string(v.barrierIntervals) +
                  " barrier interval(s); epoch expressions are " +
                  (v.epochsExact ? "exact" : "approximate");
    } else {
      f.message = "barrier interval structure is not statically countable "
                  "(barrier under non-uniform control flow or in a loop with "
                  "unresolved trip count)";
    }
    ctx.report.findings.push_back(std::move(f));
  }
};

}  // namespace

LintReport runLintPasses(const ir::Function& fn, const LintOptions& options) {
  LintReport report;
  report.kernelName = fn.name();
  report.reqdWorkGroupSize = fn.reqdWorkGroupSize;

  const KernelSummary summary = summarizeKernel(fn);

  // Leaf ranges: the launch geometry when given, else the kernel's
  // reqd_work_group_size attribute, else an assumed default geometry (good
  // enough for dependence-distance detection, never trusted for bounds
  // claims or divergence discharge).
  dataflow::LeafRanges ranges;
  bool trusted = false;
  if (options.range) {
    ranges = dataflow::LeafRanges::fromRange(*options.range);
    report.launchGlobal = options.range->global;
    trusted = true;
  } else if (fn.reqdWorkGroupSize[0] != 0 || fn.reqdWorkGroupSize[1] != 0 ||
             fn.reqdWorkGroupSize[2] != 0) {
    ranges = dataflow::LeafRanges::fromReqdWorkGroupSize(fn.reqdWorkGroupSize);
    trusted = true;
  } else {
    interp::NdRange assumed;
    assumed.global = {1048576, 1, 1};
    assumed.local = {1024, 1, 1};
    ranges = dataflow::LeafRanges::fromRange(assumed);
  }
  if (options.args) {
    for (std::size_t i = 0; i < options.args->size(); ++i) {
      const interp::KernelArg& a = (*options.args)[i];
      if (!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int) {
        ranges.set(Sym::ScalarArg, static_cast<int>(i),
                   dataflow::Interval::point(a.scalar.i));
      }
    }
  }

  // Dataflow trip-count tier: only under a real launch range (the resolver
  // needs genuine sizes; the assumed geometry would fabricate trip counts).
  std::vector<std::int64_t> staticTrips;
  bool haveTrips = false;
  if (options.range) {
    SymBinding bind;
    const auto groups = options.range->groupsPerDim();
    for (std::size_t d = 0; d < 3; ++d) {
      bind.globalSize[d] = static_cast<std::int64_t>(options.range->global[d]);
      bind.localSize[d] = static_cast<std::int64_t>(options.range->local[d]);
      bind.numGroups[d] = static_cast<std::int64_t>(groups[d]);
    }
    if (options.args) {
      for (std::size_t i = 0; i < options.args->size(); ++i) {
        const interp::KernelArg& a = (*options.args)[i];
        if (!a.isBuffer && a.scalar.kind == interp::RtValue::Kind::Int) {
          bind.scalarArgs[static_cast<int>(i)] = a.scalar.i;
        }
      }
    }
    staticTrips = dataflow::resolveStaticTrips(summary, bind,
                                               options.patterns.trips);
    haveTrips = true;
  }

  interp::KernelProfile profile;
  const interp::KernelProfile* profilePtr = nullptr;
  if (options.profileCrossCheck && options.range && options.args &&
      options.buffers) {
    interp::ProfileOptions po;
    po.groupsToProfile = options.groupsToProfile;
    po.captureLocalTrace = false;
    profile = interp::profileKernel(fn, *options.range, *options.args,
                                    *options.buffers, po);
    if (profile.ok) profilePtr = &profile;
  }

  // Static-profile tier verdict (staticprof): reported whenever the lint has
  // the full launch (range + args + buffers) — the same inputs the model's
  // tier resolves profiles from.
  if (options.range && options.args && options.buffers) {
    staticprof::SynthOptions so;
    so.groupsToProfile = options.groupsToProfile;
    const auto synth = staticprof::synthesizeProfile(
        summary, *options.range, *options.args, *options.buffers, so);
    report.staticProfileVerdict = synth.verdict.name();
    report.staticProfileReason = synth.verdict.reason;
  }

  // Race-verifier tier (DESIGN.md §15): needs a real launch range — the
  // verdict is a claim about concrete work-items of one launch geometry.
  raceverify::RaceVerdict race;
  std::vector<std::uint64_t> bufferBytes;
  bool haveRace = false;
  if (options.range) {
    raceverify::VerifyOptions vo;
    vo.args = options.args;
    if (haveTrips) vo.staticTrips = &staticTrips;
    if (options.buffers) {
      for (const auto& buf : *options.buffers) bufferBytes.push_back(buf.size());
      vo.bufferBytes = &bufferBytes;
    }
    race = raceverify::verifyRaces(summary, *options.range, vo);
    haveRace = true;
  }

  PassContext ctx{fn,      summary, options,
                  profilePtr, report,  &ranges,
                  trusted, haveTrips ? &staticTrips : nullptr,
                  haveRace ? &race : nullptr};
  PassManager pm;
  pm.add(std::make_unique<VerifierPass>());
  pm.add(std::make_unique<TripCountPass>());
  pm.add(std::make_unique<BarrierPass>());
  pm.add(std::make_unique<UniformBranchPass>());
  pm.add(std::make_unique<LocalDependencePass>());
  pm.add(std::make_unique<AccessBoundsPass>());
  pm.add(std::make_unique<LoopBoundOverflowPass>());
  pm.add(std::make_unique<AccessPatternPass>());
  pm.add(std::make_unique<RacePass>());
  pm.add(std::make_unique<BarrierIntervalPass>());
  pm.run(ctx);
  return report;
}

}  // namespace flexcl::analysis
