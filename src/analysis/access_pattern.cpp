#include "analysis/access_pattern.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace flexcl::analysis {

int InstPattern::majority() const {
  int best = -1;
  std::uint64_t bestCount = 0;
  for (int p = 0; p < dram::kPatternCount; ++p) {
    const std::uint64_t c = counts[static_cast<std::size_t>(p)];
    if (c > bestCount) {
      bestCount = c;
      best = p;
    }
  }
  return best;
}

namespace {

struct StaticEvent {
  unsigned instId = 0;
  std::int32_t buffer = -1;
  std::int64_t offset = 0;
  bool isWrite = false;
};

/// Expands the access/control tree for one work-item into `chain`.
class Expander {
 public:
  Expander(const KernelSummary& summary, const CrossCheckOptions& options,
           const std::unordered_map<int, std::int32_t>& bufferOfArg,
           std::unordered_map<unsigned, std::uint64_t>& opaqueByInst,
           std::uint64_t& totalEvents, bool& truncated)
      : summary_(summary),
        options_(options),
        bufferOfArg_(bufferOfArg),
        opaqueByInst_(opaqueByInst),
        totalEvents_(totalEvents),
        truncated_(truncated) {}

  void run(SymBinding& bind, std::vector<StaticEvent>& chain) {
    bind_ = &bind;
    chain_ = &chain;
    walk(summary_.roots);
  }

 private:
  void walk(const std::vector<AccessTreeNode>& nodes) {
    for (const AccessTreeNode& node : nodes) {
      if (truncated_) return;
      switch (node.kind) {
        case AccessTreeNode::Kind::Access:
          emit(summary_.accesses[static_cast<std::size_t>(node.accessIndex)]);
          break;
        case AccessTreeNode::Kind::Cond:
          walkCond(node);
          break;
        case AccessTreeNode::Kind::Loop:
          walkLoop(node);
          break;
        case AccessTreeNode::Kind::Barrier:
        case AccessTreeNode::Kind::Return:
          break;  // synchronisation markers: no memory events
      }
    }
  }

  void walkCond(const AccessTreeNode& node) {
    auto cond = symEval(node.cond.get(), *bind_);
    auto begin = node.children.begin();
    auto thenEnd = begin + static_cast<std::ptrdiff_t>(node.thenCount);
    // Unknown condition: assume taken (the then arm carries the access
    // pattern in the guarded-access idiom `if (gid < n) ...`).
    if (!cond || *cond != 0) {
      walkSpan(begin, thenEnd);
    } else {
      walkSpan(thenEnd, node.children.end());
    }
  }

  void walkSpan(std::vector<AccessTreeNode>::const_iterator begin,
                std::vector<AccessTreeNode>::const_iterator end) {
    for (auto it = begin; it != end; ++it) {
      if (truncated_) return;
      switch (it->kind) {
        case AccessTreeNode::Kind::Access:
          emit(summary_.accesses[static_cast<std::size_t>(it->accessIndex)]);
          break;
        case AccessTreeNode::Kind::Cond:
          walkCond(*it);
          break;
        case AccessTreeNode::Kind::Loop:
          walkLoop(*it);
          break;
        case AccessTreeNode::Kind::Barrier:
        case AccessTreeNode::Kind::Return:
          break;  // synchronisation markers: no memory events
      }
    }
  }

  void walkLoop(const AccessTreeNode& node) {
    auto& iter = bind_->loopIters[node.loopId];
    iter = 0;
    const bool condDriven =
        node.loopCond && symEval(node.loopCond.get(), *bind_).has_value();

    if (condDriven && node.condFirst) {
      for (std::int64_t k = 0;; ++k) {
        iter = k;
        auto c = symEval(node.loopCond.get(), *bind_);
        if (!c || *c == 0) break;
        if (k >= options_.trips.maxStaticTrips) {
          truncated_ = true;
          break;
        }
        walk(node.children);
        if (truncated_) break;
      }
    } else if (condDriven) {  // do-loop: body first, then the check
      for (std::int64_t k = 0;; ++k) {
        iter = k;
        if (k >= options_.trips.maxStaticTrips) {
          truncated_ = true;
          break;
        }
        walk(node.children);
        if (truncated_) break;
        auto c = symEval(node.loopCond.get(), *bind_);
        if (!c || *c == 0) break;
      }
    } else {
      std::int64_t trips =
          node.staticTrip >= 0 ? node.staticTrip : options_.trips.fallbackTripsInt();
      trips = std::min(trips, options_.trips.maxStaticTrips);
      for (std::int64_t k = 0; k < trips && !truncated_; ++k) {
        iter = k;
        walk(node.children);
      }
    }
    bind_->loopIters.erase(node.loopId);
  }

  void emit(const MemAccessInfo& access) {
    if (access.space != ir::AddressSpace::Global &&
        access.space != ir::AddressSpace::Constant) {
      return;
    }
    if (++totalEvents_ > options_.maxStreamEvents) {
      truncated_ = true;
      return;
    }
    std::int32_t buffer = -1;
    if (access.base == PtrBase::BufferArg) {
      auto it = bufferOfArg_.find(access.baseIndex);
      if (it != bufferOfArg_.end()) buffer = it->second;
    }
    std::optional<std::int64_t> offset;
    if (buffer >= 0) offset = symEval(access.offset.get(), *bind_);
    if (buffer < 0 || !offset) {
      ++opaqueByInst_[access.instId];
      return;
    }
    chain_->push_back({access.instId, buffer, *offset, access.isWrite});
  }

  const KernelSummary& summary_;
  const CrossCheckOptions& options_;
  const std::unordered_map<int, std::int32_t>& bufferOfArg_;
  std::unordered_map<unsigned, std::uint64_t>& opaqueByInst_;
  std::uint64_t& totalEvents_;
  bool& truncated_;
  SymBinding* bind_ = nullptr;
  std::vector<StaticEvent>* chain_ = nullptr;
};

/// Replays a stream through the per-bank row-buffer state machine (the same
/// rules as dram::analyzeStream) and histograms patterns per instruction.
class Replayer {
 public:
  explicit Replayer(const dram::DramConfig& config)
      : config_(config), banks_(static_cast<std::size_t>(config.banks)) {}

  dram::AccessPattern classify(std::int32_t buffer, std::int64_t offset,
                               bool isWrite) {
    const dram::BankAddress ba =
        dram::mapAddress(config_, dram::linearAddress(buffer, offset));
    BankState& bank = banks_[static_cast<std::size_t>(ba.bank)];
    const bool hit = bank.anyAccess && bank.openRow == ba.row;
    const bool prevWrite = bank.anyAccess && bank.lastWasWrite;
    bank.openRow = ba.row;
    bank.lastWasWrite = isWrite;
    bank.anyAccess = true;
    return dram::classifyPattern(prevWrite, isWrite, hit);
  }

 private:
  struct BankState {
    std::uint64_t openRow = ~0ull;
    bool lastWasWrite = false;
    bool anyAccess = false;
  };
  const dram::DramConfig& config_;
  std::vector<BankState> banks_;
};

struct InstPatternMap {
  std::unordered_map<unsigned, std::size_t> index;
  std::vector<InstPattern> patterns;

  InstPattern& of(unsigned instId) {
    auto [it, inserted] = index.try_emplace(instId, patterns.size());
    if (inserted) {
      patterns.emplace_back();
      patterns.back().instId = instId;
    }
    return patterns[it->second];
  }
};

void annotate(InstPatternMap& map, const KernelSummary& summary) {
  for (const MemAccessInfo& access : summary.accesses) {
    auto it = map.index.find(access.instId);
    if (it == map.index.end()) continue;
    map.patterns[it->second].loc = access.loc;
    map.patterns[it->second].isWrite = access.isWrite;
  }
}

}  // namespace

PatternCrossCheck crossCheckPatterns(const KernelSummary& summary,
                                     const interp::NdRange& range,
                                     const std::vector<interp::KernelArg>& args,
                                     const interp::KernelProfile* profile,
                                     const CrossCheckOptions& options) {
  PatternCrossCheck result;

  // Argument bindings shared by every work-item.
  std::unordered_map<int, std::int32_t> bufferOfArg;
  SymBinding base;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const interp::KernelArg& a = args[i];
    if (a.isBuffer) {
      bufferOfArg[static_cast<int>(i)] = a.bufferIndex;
    } else if (a.scalar.kind == interp::RtValue::Kind::Int) {
      base.scalarArgs[static_cast<int>(i)] = a.scalar.i;
    }
  }
  const auto gpd = range.groupsPerDim();
  for (int d = 0; d < 3; ++d) {
    base.globalSize[d] = static_cast<std::int64_t>(range.global[d]);
    base.localSize[d] = static_cast<std::int64_t>(range.local[d]);
    base.numGroups[d] = static_cast<std::int64_t>(gpd[d]);
  }

  // Static expansion: the same work-groups the profiler runs, work-items
  // enumerated per group; chains keyed by linear global id so the replay
  // order matches the profiled per-work-item replay below.
  std::uint64_t groups = std::min<std::uint64_t>(
      profile ? profile->profiledGroups : options.groupsToExpand,
      range.groupCount());
  std::map<std::uint64_t, std::vector<StaticEvent>> chains;
  std::unordered_map<unsigned, std::uint64_t> opaqueByInst;
  std::uint64_t totalEvents = 0;
  Expander expander(summary, options, bufferOfArg, opaqueByInst, totalEvents,
                    result.truncated);
  const std::uint64_t wgSize = range.localCount();
  for (std::uint64_t g = 0; g < groups && !result.truncated; ++g) {
    SymBinding bind = base;
    bind.groupId[0] = static_cast<std::int64_t>(g % gpd[0]);
    bind.groupId[1] = static_cast<std::int64_t>((g / gpd[0]) % gpd[1]);
    bind.groupId[2] = static_cast<std::int64_t>(g / (gpd[0] * gpd[1]));
    for (std::uint64_t l = 0; l < wgSize && !result.truncated; ++l) {
      bind.localId[0] = static_cast<std::int64_t>(l % range.local[0]);
      bind.localId[1] =
          static_cast<std::int64_t>((l / range.local[0]) % range.local[1]);
      bind.localId[2] =
          static_cast<std::int64_t>(l / (range.local[0] * range.local[1]));
      for (int d = 0; d < 3; ++d) {
        bind.globalId[d] = bind.groupId[d] * base.localSize[d] + bind.localId[d];
      }
      const std::uint64_t linear =
          static_cast<std::uint64_t>(bind.globalId[0]) +
          static_cast<std::uint64_t>(bind.globalId[1]) * range.global[0] +
          static_cast<std::uint64_t>(bind.globalId[2]) * range.global[0] *
              range.global[1];
      expander.run(bind, chains[linear]);
    }
  }

  // Replay the static stream (chains concatenated in work-item order).
  InstPatternMap staticMap;
  {
    Replayer replay(options.dram);
    for (const auto& [wi, chain] : chains) {
      for (const StaticEvent& ev : chain) {
        const dram::AccessPattern p =
            replay.classify(ev.buffer, ev.offset, ev.isWrite);
        InstPattern& ip = staticMap.of(ev.instId);
        ++ip.counts[static_cast<std::size_t>(p)];
        ++ip.events;
        ++result.staticStreamEvents;
      }
    }
  }
  for (const auto& [instId, n] : opaqueByInst) staticMap.of(instId).opaqueEvents = n;
  annotate(staticMap, summary);

  // Replay the profiled trace the same way (uncoalesced, per-work-item
  // chains in linear work-item order — what the memory model feeds the
  // classifier at concurrency 1).
  InstPatternMap profiledMap;
  if (profile && profile->ok) {
    std::map<std::uint64_t, std::vector<const interp::MemoryAccessEvent*>> raw;
    for (const interp::MemoryAccessEvent& ev : profile->globalTrace) {
      raw[ev.workItem].push_back(&ev);
    }
    Replayer replay(options.dram);
    for (const auto& [wi, events] : raw) {
      for (const interp::MemoryAccessEvent* ev : events) {
        const dram::AccessPattern p =
            replay.classify(ev->buffer, ev->offset, ev->isWrite);
        InstPattern& ip = profiledMap.of(ev->instId);
        ++ip.counts[static_cast<std::size_t>(p)];
        ++ip.events;
        ++result.profiledStreamEvents;
      }
    }
    annotate(profiledMap, summary);
  }

  // Cross-check, weighted by profiled event counts.
  if (!profiledMap.patterns.empty()) {
    std::unordered_map<unsigned, std::string> offsetText;
    for (const MemAccessInfo& access : summary.accesses) {
      offsetText.try_emplace(access.instId, symStr(access.offset.get()));
    }
    std::uint64_t matched = 0;
    std::uint64_t total = 0;
    for (const InstPattern& prof : profiledMap.patterns) {
      total += prof.events;
      const int profMajority = prof.majority();
      int staticMajority = -1;
      auto it = staticMap.index.find(prof.instId);
      if (it != staticMap.index.end()) {
        staticMajority = staticMap.patterns[it->second].majority();
      }
      if (staticMajority == profMajority && staticMajority >= 0) {
        matched += prof.events;
        continue;
      }
      PatternDivergence div;
      div.instId = prof.instId;
      div.loc = prof.loc;
      div.staticPattern = staticMajority;
      div.profiledPattern = profMajority;
      div.profiledEvents = prof.events;
      auto ot = offsetText.find(prof.instId);
      if (ot != offsetText.end()) div.offsetText = ot->second;
      result.divergences.push_back(std::move(div));
    }
    result.agreement =
        total == 0 ? 1.0
                   : static_cast<double>(matched) / static_cast<double>(total);
  }

  result.staticByInst = std::move(staticMap.patterns);
  result.profiledByInst = std::move(profiledMap.patterns);
  return result;
}

}  // namespace flexcl::analysis
