#include "analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace flexcl::analysis {
namespace {

const char* severityName(DiagSeverity s) {
  switch (s) {
    case DiagSeverity::Note: return "note";
    case DiagSeverity::Warning: return "warning";
    case DiagSeverity::Error: return "error";
  }
  return "?";
}

void jsonEscape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const char* patternNameOr(int pattern, const char* fallback) {
  if (pattern < 0 || pattern >= dram::kPatternCount) return fallback;
  return dram::patternName(static_cast<dram::AccessPattern>(pattern));
}

}  // namespace

std::size_t LintReport::errorCount() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const LintFinding& f) {
        return f.severity == DiagSeverity::Error;
      }));
}

std::size_t LintReport::warningCount() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(), [](const LintFinding& f) {
        return f.severity == DiagSeverity::Warning;
      }));
}

void LintReport::emitTo(DiagnosticEngine& diags) const {
  for (const LintFinding& f : findings) {
    diags.report(f.severity, f.loc,
                 "[" + f.pass + "/" + f.rule + "] " + f.message);
  }
}

Feasibility checkDesign(const LintReport& report,
                        const model::DesignPoint& design) {
  Feasibility result;
  if (report.hasErrors()) {
    result.feasible = false;
    result.rule = "lint-errors";
    result.reason = "kernel has " + std::to_string(report.errorCount()) +
                    " lint error(s)";
    return result;
  }
  result.racy = report.raceVerdict == "racy";
  const auto& reqd = report.reqdWorkGroupSize;
  if (reqd[0] != 0 || reqd[1] != 0 || reqd[2] != 0) {
    for (int d = 0; d < 3; ++d) {
      const std::uint32_t want = std::max<std::uint32_t>(1, reqd[d]);
      if (design.workGroupSize[d] != want) {
        result.feasible = false;
        result.rule = "reqd-work-group-size";
        result.reason = "work-group size " +
                        std::to_string(design.workGroupSize[0]) + "x" +
                        std::to_string(design.workGroupSize[1]) + "x" +
                        std::to_string(design.workGroupSize[2]) +
                        " violates reqd_work_group_size(" +
                        std::to_string(reqd[0]) + "," + std::to_string(reqd[1]) +
                        "," + std::to_string(reqd[2]) + ")";
        return result;
      }
    }
  }

  // Local-memory bounds under this candidate work-group size. Only facts
  // whose offset is LocalId-only are checked: their interval extremes are
  // attained by real work-items, so an out-of-range extreme is a proof, not
  // an over-approximation.
  std::array<std::uint64_t, 3> wg{};
  for (int d = 0; d < 3; ++d) {
    std::uint64_t w = design.workGroupSize[static_cast<std::size_t>(d)];
    if (w == 0) w = 1;
    const std::uint64_t g = report.launchGlobal[static_cast<std::size_t>(d)];
    if (g > 0) {
      w = std::min(w, g);
      while (g % w != 0) --w;  // the model's divisor clamping (rangeFor)
    }
    wg[static_cast<std::size_t>(d)] = w;
  }
  dataflow::LeafRanges localRanges;
  for (int d = 0; d < 3; ++d) {
    const auto w =
        static_cast<std::int64_t>(wg[static_cast<std::size_t>(d)]);
    localRanges.set(Sym::LocalId, d, dataflow::Interval::range(0, w - 1));
    localRanges.set(Sym::LocalSize, d, dataflow::Interval::point(w));
  }
  for (const AccessBoundFact& fact : report.accessBounds) {
    if (fact.space != ir::AddressSpace::Local) continue;
    if (fact.extent < 0 || !fact.localIdOnly || fact.divergent) continue;
    const dataflow::Interval iv = dataflow::rangeOf(fact.offset, localRanges);
    if (iv.isTop()) continue;
    const auto bytes = static_cast<std::int64_t>(fact.bytes);
    if (iv.lo >= 0 && iv.hi + bytes <= fact.extent) continue;
    result.feasible = false;
    result.rule = "local-out-of-bounds";
    result.reason =
        "local-memory " + std::string(fact.isWrite ? "store" : "load") +
        " (inst#" + std::to_string(fact.instId) + ") reaches byte offsets [" +
        std::to_string(iv.lo) + ", " + std::to_string(iv.hi + bytes) +
        ") of a " + std::to_string(fact.extent) +
        "-byte local buffer under work-group size " + std::to_string(wg[0]) +
        "x" + std::to_string(wg[1]) + "x" + std::to_string(wg[2]);
    return result;
  }

  if (design.commMode == model::CommMode::Pipeline &&
      !report.crossWiDeps.empty()) {
    std::int64_t minDist = report.crossWiDeps.front().distance;
    for (const CrossWiDependence& dep : report.crossWiDeps) {
      minDist = std::min(minDist, dep.distance);
    }
    result.recMiiBound = true;
    result.rule = "cross-wi-dependence";
    result.reason = "cross-work-item dependence (distance " +
                    std::to_string(minDist) +
                    ") bounds pipeline initiation interval";
  }
  return result;
}

std::string renderText(const LintReport& report) {
  std::ostringstream os;
  os << "lint report for kernel '" << report.kernelName << "'\n";
  os << "  findings: " << report.errorCount() << " error(s), "
     << report.warningCount() << " warning(s), "
     << (report.findings.size() - report.errorCount() - report.warningCount())
     << " note(s)\n";
  for (const LintFinding& f : report.findings) {
    os << "  ";
    if (f.loc.isValid()) os << f.loc.line << ":" << f.loc.column << ": ";
    os << severityName(f.severity) << ": [" << f.pass << "/" << f.rule << "] "
       << f.message << "\n";
  }

  os << "  loops: " << report.loopCount << " total, "
     << report.unresolvedTripLoops << " with statically unresolved trip count\n";
  os << "  global accesses: " << report.classifiedSites << "/"
     << report.globalAccessSites << " sites classified statically\n";
  for (const InstPattern& ip : report.patterns.staticByInst) {
    os << "    inst#" << ip.instId;
    if (ip.loc.isValid()) os << " @" << ip.loc.line << ":" << ip.loc.column;
    os << (ip.isWrite ? " store " : " load  ") << "pattern "
       << patternNameOr(ip.majority(), "unclassified") << " (" << ip.events
       << " events";
    if (ip.opaqueEvents > 0) os << ", " << ip.opaqueEvents << " opaque";
    os << ")\n";
  }
  if (report.crossChecked) {
    os << "  cross-check: " << report.patterns.agreement * 100.0
       << "% agreement over " << report.patterns.profiledStreamEvents
       << " profiled events, " << report.patterns.divergences.size()
       << " divergence(s)\n";
  }
  if (!report.staticProfileVerdict.empty()) {
    os << "  static profile: " << report.staticProfileVerdict;
    if (!report.staticProfileReason.empty()) {
      os << " (" << report.staticProfileReason << ")";
    }
    os << "\n";
  }
  if (!report.raceVerdict.empty()) {
    os << "  races: " << report.raceVerdict;
    if (!report.raceReason.empty()) os << " (" << report.raceReason << ")";
    os << ", " << report.racePairsChecked << " pair(s) over "
       << report.raceBarrierIntervals << " barrier interval(s)\n";
  }
  if (!report.crossWiDeps.empty()) {
    os << "  cross-work-item dependences:\n";
    for (const CrossWiDependence& dep : report.crossWiDeps) {
      os << "    store#" << dep.storeInstId << " -> load#" << dep.loadInstId
         << " distance " << dep.distance << "\n";
    }
  }
  return os.str();
}

std::string renderJson(const LintReport& report) {
  std::ostringstream os;
  os << "{";
  // Schema contract: schema_version is always the first key and every key
  // below renders in this fixed order (pinned by the lint golden test);
  // bump the version when the shape changes.
  os << "\"schema_version\":" << kLintSchemaVersion;
  os << ",\"kernel\":";
  jsonEscape(os, report.kernelName);
  os << ",\"errors\":" << report.errorCount();
  os << ",\"warnings\":" << report.warningCount();
  os << ",\"findings\":[";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& f = report.findings[i];
    if (i) os << ",";
    os << "{\"pass\":";
    jsonEscape(os, f.pass);
    os << ",\"rule\":";
    jsonEscape(os, f.rule);
    os << ",\"severity\":\"" << severityName(f.severity) << "\"";
    os << ",\"line\":" << f.loc.line << ",\"column\":" << f.loc.column;
    os << ",\"message\":";
    jsonEscape(os, f.message);
    if (f.instId >= 0) os << ",\"inst\":" << f.instId;
    if (f.loopId >= 0) os << ",\"loop\":" << f.loopId;
    os << "}";
  }
  os << "]";
  os << ",\"loops\":{\"total\":" << report.loopCount
     << ",\"unresolvedTrip\":" << report.unresolvedTripLoops << "}";
  os << ",\"accessSites\":{\"global\":" << report.globalAccessSites
     << ",\"classified\":" << report.classifiedSites << "}";
  os << ",\"patterns\":[";
  for (std::size_t i = 0; i < report.patterns.staticByInst.size(); ++i) {
    const InstPattern& ip = report.patterns.staticByInst[i];
    if (i) os << ",";
    os << "{\"inst\":" << ip.instId << ",\"write\":"
       << (ip.isWrite ? "true" : "false") << ",\"pattern\":";
    jsonEscape(os, patternNameOr(ip.majority(), "unclassified"));
    os << ",\"events\":" << ip.events << ",\"opaque\":" << ip.opaqueEvents
       << "}";
  }
  os << "]";
  os << ",\"crossCheck\":";
  if (report.crossChecked) {
    os << "{\"agreement\":" << report.patterns.agreement
       << ",\"profiledEvents\":" << report.patterns.profiledStreamEvents
       << ",\"divergences\":[";
    for (std::size_t i = 0; i < report.patterns.divergences.size(); ++i) {
      const PatternDivergence& d = report.patterns.divergences[i];
      if (i) os << ",";
      os << "{\"inst\":" << d.instId << ",\"static\":";
      jsonEscape(os, patternNameOr(d.staticPattern, "unclassified"));
      os << ",\"profiled\":";
      jsonEscape(os, patternNameOr(d.profiledPattern, "unclassified"));
      os << ",\"events\":" << d.profiledEvents << "}";
    }
    os << "]}";
  } else {
    os << "null";
  }
  os << ",\"crossWiDependences\":[";
  for (std::size_t i = 0; i < report.crossWiDeps.size(); ++i) {
    const CrossWiDependence& dep = report.crossWiDeps[i];
    if (i) os << ",";
    os << "{\"store\":" << dep.storeInstId << ",\"load\":" << dep.loadInstId
       << ",\"distance\":" << dep.distance << "}";
  }
  os << "]";
  os << ",\"accessBounds\":[";
  for (std::size_t i = 0; i < report.accessBounds.size(); ++i) {
    const AccessBoundFact& fact = report.accessBounds[i];
    if (i) os << ",";
    os << "{\"inst\":" << fact.instId << ",\"write\":"
       << (fact.isWrite ? "true" : "false") << ",\"space\":\""
       << (fact.space == ir::AddressSpace::Local ? "local" : "global")
       << "\",\"base\":" << fact.baseIndex << ",\"bytes\":" << fact.bytes
       << ",\"extent\":" << fact.extent << ",\"localIdOnly\":"
       << (fact.localIdOnly ? "true" : "false") << "}";
  }
  os << "]";
  os << ",\"reqdWorkGroupSize\":[" << report.reqdWorkGroupSize[0] << ","
     << report.reqdWorkGroupSize[1] << "," << report.reqdWorkGroupSize[2] << "]";
  os << ",\"usesBarrier\":" << (report.usesBarrier ? "true" : "false");
  os << ",\"staticProfile\":";
  if (report.staticProfileVerdict.empty()) {
    os << "null";
  } else {
    os << "{\"verdict\":";
    jsonEscape(os, report.staticProfileVerdict);
    os << ",\"reason\":";
    jsonEscape(os, report.staticProfileReason);
    os << "}";
  }
  os << ",\"race\":";
  if (report.raceVerdict.empty()) {
    os << "null";
  } else {
    os << "{\"verdict\":";
    jsonEscape(os, report.raceVerdict);
    os << ",\"reason\":";
    jsonEscape(os, report.raceReason);
    os << ",\"pairs\":{\"checked\":" << report.racePairsChecked
       << ",\"racy\":" << report.raceRacyPairs
       << ",\"unknown\":" << report.raceUnknownPairs << "}";
    os << ",\"barrierIntervals\":" << report.raceBarrierIntervals;
    os << ",\"witnesses\":[";
    for (std::size_t i = 0; i < report.raceWitnesses.size(); ++i) {
      if (i) os << ",";
      jsonEscape(os, report.raceWitnesses[i]);
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

}  // namespace flexcl::analysis
