#include "obs/trace.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace flexcl::obs {
namespace {

thread_local int tlsLane = -1;
thread_local int tlsDepth = 0;
thread_local std::uint64_t tlsRequestId = 0;
std::atomic<int> nextLane{0};

void appendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer* instance = new Tracer();  // never destroyed: spans may be
  return *instance;                        // recorded during static teardown
}

void Tracer::start() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spans_.clear();
    origin_ = std::chrono::steady_clock::now();
  }
  active_.store(true, std::memory_order_relaxed);
}

void Tracer::stop() { active_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
}

void Tracer::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(record));
}

double Tracer::nowUs() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin_)
      .count();
}

int Tracer::laneOfThisThread() {
  if (tlsLane < 0) tlsLane = nextLane.fetch_add(1, std::memory_order_relaxed);
  return tlsLane;
}

std::uint64_t Tracer::setThreadRequestId(std::uint64_t id) {
  const std::uint64_t previous = tlsRequestId;
  tlsRequestId = id;
  return previous;
}

std::uint64_t Tracer::threadRequestId() { return tlsRequestId; }

std::vector<SpanRecord> Tracer::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::string Tracer::json() const {
  const std::vector<SpanRecord> spans = this->spans();
  std::ostringstream os;
  os.precision(3);
  os << std::fixed;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const SpanRecord& s : spans) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\": ";
    appendJsonString(os, s.name);
    os << ", \"cat\": \"" << s.category << "\", \"ph\": \"X\", \"pid\": 1"
       << ", \"tid\": " << s.lane << ", \"ts\": " << s.startUs
       << ", \"dur\": " << s.durationUs << ", \"args\": {\"depth\": " << s.depth;
    if (s.requestId != 0) os << ", \"request\": " << s.requestId;
    os << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool Tracer::writeTo(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << json();
  return static_cast<bool>(out);
}

int Span::enterLane() { return tlsDepth++; }

void Span::leaveLane() { --tlsDepth; }

}  // namespace flexcl::obs
