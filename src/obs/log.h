// Structured line-JSON event log (DESIGN.md §14).
//
// One JSON object per line, written to the file given by `--log-json <path>`
// on `flexcl serve` and the one-shot commands: request completions (id, kind,
// outcome, duration, queue wait, cache provenance), daemon lifecycle events,
// and slow-request breakdowns. Unlike counters and traces, log lines carry a
// wall-clock timestamp (`ts_us`, microseconds since the Unix epoch) so events
// from different daemons can be merged; everything else that needs a
// monotonic timebase uses obs::monotonicUs().
//
// Overhead contract: with no log open, Log::enabled() is one relaxed atomic
// load — call sites skip event construction entirely. Writes are serialized
// under a mutex (line granularity: concurrent workers never interleave
// bytes) and flushed per line so a crashed daemon keeps its tail. Log events
// never feed back into model/simulator results.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace flexcl::obs {

/// One structured event. Fields left at their defaults are omitted from the
/// rendered line. Key order in the line is pinned (golden-tested):
/// ts_us, level, event, id, kind, outcome, cache, duration_us,
/// queue_wait_us, phases, detail.
struct LogEvent {
  const char* level = "info";   ///< "info" | "warn" | "error"
  std::string event;            ///< e.g. "request", "serve.start"
  std::uint64_t requestId = 0;  ///< serve request id (0 = not a request)
  std::string kind;             ///< request op: "estimate", "metrics", ...
  std::string outcome;          ///< "ok" | "error"
  std::string provenance;       ///< cache provenance: "hit" | "miss"
  double durationUs = -1;       ///< end-to-end handling time
  double queueWaitUs = -1;      ///< submit -> job start
  /// Per-phase breakdown (name, microseconds); rendered only for slow
  /// requests (duration >= slow threshold) or when `forcePhases` is set.
  std::vector<std::pair<std::string, double>> phases;
  bool forcePhases = false;
  std::string detail;  ///< freeform context (error text, paths, ...)
};

class Log {
 public:
  /// The process-wide log all instrumentation sites write to.
  static Log& global();

  /// Opens (truncates) `path` and starts accepting events; false on I/O
  /// failure. `slowUs` is the slow-request threshold: events at least this
  /// long are escalated to level "warn" with their full phase breakdown.
  bool open(const std::string& path, double slowUs);
  void close();

  /// One relaxed load; the gate call sites test before building an event.
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double slowUs() const;

  /// Renders and writes one line; no-op when not enabled.
  void write(const LogEvent& event);

  /// Renders `event` to its line-JSON form without writing (golden tests).
  /// `slowUs` applies the slow-request escalation; pass a negative value to
  /// disable it. `tsUs` stamps the line (epoch microseconds).
  static std::string render(const LogEvent& event, double slowUs, double tsUs);

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::ofstream out_;
  double slowUs_ = -1;
};

/// Shorthand for Log::global().enabled().
[[nodiscard]] inline bool logEnabled() { return Log::global().enabled(); }

/// Shorthand for Log::global().write(event).
void logEvent(const LogEvent& event);

}  // namespace flexcl::obs
