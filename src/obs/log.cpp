#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string_view>

namespace flexcl::obs {
namespace {

double wallClockUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void appendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void appendUs(std::ostringstream& os, double us) {
  const auto prev = os.precision(1);
  os << std::fixed << us;
  os.precision(prev);
}

}  // namespace

Log& Log::global() {
  static Log* instance = new Log();  // never destroyed: events may arrive
  return *instance;                  // during static teardown
}

bool Log::open(const std::string& path, double slowUs) {
  std::lock_guard<std::mutex> lock(mutex_);
  out_.close();
  out_.clear();
  out_.open(path, std::ios::trunc);
  if (!out_) {
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  slowUs_ = slowUs;
  enabled_.store(true, std::memory_order_relaxed);
  return true;
}

void Log::close() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  out_.close();
}

double Log::slowUs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slowUs_;
}

std::string Log::render(const LogEvent& event, double slowUs, double tsUs) {
  const bool slow =
      slowUs >= 0 && event.durationUs >= 0 && event.durationUs >= slowUs;
  std::ostringstream os;
  os << "{\"ts_us\": ";
  const auto prev = os.precision(0);
  os << std::fixed << tsUs;
  os.precision(prev);
  const char* level = event.level;
  if (slow && std::string_view(level) == "info") level = "warn";
  os << ", \"level\": \"" << level << "\"";
  os << ", \"event\": ";
  appendJsonString(os, event.event);
  if (event.requestId != 0) os << ", \"id\": " << event.requestId;
  if (!event.kind.empty()) {
    os << ", \"kind\": ";
    appendJsonString(os, event.kind);
  }
  if (!event.outcome.empty()) {
    os << ", \"outcome\": ";
    appendJsonString(os, event.outcome);
  }
  if (!event.provenance.empty()) {
    os << ", \"cache\": ";
    appendJsonString(os, event.provenance);
  }
  if (event.durationUs >= 0) {
    os << ", \"duration_us\": ";
    appendUs(os, event.durationUs);
  }
  if (event.queueWaitUs >= 0) {
    os << ", \"queue_wait_us\": ";
    appendUs(os, event.queueWaitUs);
  }
  if ((slow || event.forcePhases) && !event.phases.empty()) {
    os << ", \"phases\": {";
    bool first = true;
    for (const auto& [name, us] : event.phases) {
      if (!first) os << ", ";
      first = false;
      appendJsonString(os, name);
      os << ": ";
      appendUs(os, us);
    }
    os << "}";
  }
  if (!event.detail.empty()) {
    os << ", \"detail\": ";
    appendJsonString(os, event.detail);
  }
  os << "}";
  return os.str();
}

void Log::write(const LogEvent& event) {
  if (!enabled()) return;
  const double tsUs = wallClockUs();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  out_ << render(event, slowUs_, tsUs) << '\n';
  out_.flush();
}

void logEvent(const LogEvent& event) { Log::global().write(event); }

}  // namespace flexcl::obs
