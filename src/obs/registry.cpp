#include "obs/registry.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <sstream>

namespace flexcl::obs {
namespace {

std::atomic<bool> gEnabled{false};

void appendJsonMap(std::ostringstream& os, const char* key, auto&& samples,
                   auto&& valueWriter) {
  os << "\"" << key << "\": {";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << s.name << "\": ";
    valueWriter(os, s.value);
  }
  os << "}";
}

void appendFixed(std::ostringstream& os, double value, int precision) {
  const auto flags = os.flags();
  const auto prev = os.precision(precision);
  os << std::fixed << value;
  os.precision(prev);
  os.flags(flags);
}

/// Quantile representative: the midpoint of a bucket's bounds (bucket 0,
/// which holds sub-microsecond samples, reports 0).
double bucketMid(int index) {
  if (index <= 0) return 0.0;
  return 0.5 * (Histogram::bucketLow(index) + Histogram::bucketHigh(index));
}

}  // namespace

double monotonicUs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point origin = Clock::now();
  return std::chrono::duration<double, std::micro>(Clock::now() - origin).count();
}

bool enabled() { return gEnabled.load(std::memory_order_relaxed); }

void setEnabled(bool on) { gEnabled.store(on, std::memory_order_relaxed); }

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) return bucketMid(static_cast<int>(i));
  }
  return bucketMid(static_cast<int>(buckets.size()) - 1);
}

double HistogramSnapshot::maxValue() const {
  for (std::size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] > 0) return Histogram::bucketHigh(static_cast<int>(i));
  }
  return 0.0;
}

HistogramSnapshot HistogramSnapshot::deltaSince(
    const HistogramSnapshot& baseline) const {
  HistogramSnapshot out;
  out.count = count >= baseline.count ? count - baseline.count : 0;
  out.sum = std::max(0.0, sum - baseline.sum);
  out.buckets.resize(buckets.size(), 0);
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t base =
        i < baseline.buckets.size() ? baseline.buckets[i] : 0;
    out.buckets[i] = buckets[i] >= base ? buckets[i] - base : 0;
  }
  return out;
}

HistogramSnapshot& HistogramSnapshot::operator+=(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  return *this;
}

std::string HistogramSnapshot::json() const {
  std::ostringstream os;
  os << "{\"count\": " << count;
  os << ", \"p50\": ";
  appendFixed(os, quantile(0.50), 3);
  os << ", \"p90\": ";
  appendFixed(os, quantile(0.90), 3);
  os << ", \"p99\": ";
  appendFixed(os, quantile(0.99), 3);
  os << ", \"max\": ";
  appendFixed(os, maxValue(), 3);
  os << ", \"mean\": ";
  appendFixed(os, mean(), 3);
  os << "}";
  return os.str();
}

int Histogram::bucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // also catches NaN and negatives
  if (value >= 0x1p63) return kBucketCount - 1;
  const auto integral = static_cast<std::uint64_t>(value);
  const int exponent = std::bit_width(integral) - 1;  // floor(log2(value))
  const double low = std::ldexp(1.0, exponent);
  const int sub = std::clamp(
      static_cast<int>((value - low) / low * kSubBuckets), 0, kSubBuckets - 1);
  return 1 + exponent * kSubBuckets + sub;
}

double Histogram::bucketLow(int index) {
  if (index <= 0) return 0.0;
  index = std::min(index, kBucketCount - 1);
  const int exponent = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0, exponent) *
         (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double Histogram::bucketHigh(int index) {
  if (index <= 0) return 1.0;
  index = std::min(index, kBucketCount - 1);
  const int exponent = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0, exponent) *
         (1.0 + static_cast<double>(sub + 1) / kSubBuckets);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  out.buckets.resize(kBucketCount);
  for (int i = 0; i < kBucketCount; ++i) {
    out.buckets[static_cast<std::size_t>(i)] =
        buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: counter
  return *instance;                            // refs outlive static teardown
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

void Registry::setGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::vector<Registry::CounterSample> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<Registry::GaugeSample> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    out.push_back(GaugeSample{name, value});
  }
  return out;
}

std::vector<Registry::HistogramSample> Registry::histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSample> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.push_back(HistogramSample{name, histogram->snapshot()});
  }
  return out;
}

std::string Registry::json() const {
  std::ostringstream os;
  os << "{";
  appendJsonMap(os, "counters", counters(),
                [](std::ostringstream& o, std::uint64_t v) { o << v; });
  os << ", ";
  appendJsonMap(os, "gauges", gauges(), [](std::ostringstream& o, double v) {
    o.precision(6);
    o << std::fixed << v;
  });
  os << ", ";
  appendJsonMap(os, "histograms", histograms(),
                [](std::ostringstream& o, const HistogramSnapshot& v) {
                  o << v.json();
                });
  os << "}";
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, histogram] : histograms_) histogram->reset();
  gauges_.clear();
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

void setGauge(std::string_view name, double value) {
  if (enabled()) Registry::global().setGauge(name, value);
}

Histogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

}  // namespace flexcl::obs
