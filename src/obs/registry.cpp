#include "obs/registry.h"

#include <sstream>

namespace flexcl::obs {
namespace {

std::atomic<bool> gEnabled{false};

void appendJsonMap(std::ostringstream& os, const char* key, auto&& samples,
                   auto&& valueWriter) {
  os << "\"" << key << "\": {";
  bool first = true;
  for (const auto& s : samples) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << s.name << "\": ";
    valueWriter(os, s.value);
  }
  os << "}";
}

}  // namespace

bool enabled() { return gEnabled.load(std::memory_order_relaxed); }

void setEnabled(bool on) { gEnabled.store(on, std::memory_order_relaxed); }

Registry& Registry::global() {
  static Registry* instance = new Registry();  // never destroyed: counter
  return *instance;                            // refs outlive static teardown
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

void Registry::setGauge(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

std::vector<Registry::CounterSample> Registry::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSample> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back(CounterSample{name, counter->value()});
  }
  return out;
}

std::vector<Registry::GaugeSample> Registry::gauges() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [name, value] : gauges_) {
    out.push_back(GaugeSample{name, value});
  }
  return out;
}

std::string Registry::json() const {
  std::ostringstream os;
  os << "{";
  appendJsonMap(os, "counters", counters(),
                [](std::ostringstream& o, std::uint64_t v) { o << v; });
  os << ", ";
  appendJsonMap(os, "gauges", gauges(), [](std::ostringstream& o, double v) {
    o.precision(6);
    o << std::fixed << v;
  });
  os << "}";
  return os.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->reset();
  gauges_.clear();
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

void setGauge(std::string_view name, double value) {
  if (enabled()) Registry::global().setGauge(name, value);
}

}  // namespace flexcl::obs
