#include "obs/request_scope.h"

#include "obs/trace.h"

namespace flexcl::obs {
namespace {

thread_local RequestScope* tlsCurrentScope = nullptr;

}  // namespace

RequestScope::RequestScope(std::uint64_t id, std::string kind)
    : id_(id),
      kind_(std::move(kind)),
      previous_(tlsCurrentScope),
      previousTraceId_(Tracer::setThreadRequestId(id)) {
  tlsCurrentScope = this;
}

RequestScope::~RequestScope() {
  tlsCurrentScope = previous_;
  Tracer::setThreadRequestId(previousTraceId_);
}

RequestScope* RequestScope::current() { return tlsCurrentScope; }

void RequestScope::addPhaseUs(const std::string& name, double us) {
  for (auto& [phase, total] : phases_) {
    if (phase == name) {
      total += us;
      return;
    }
  }
  phases_.emplace_back(name, us);
}

}  // namespace flexcl::obs
