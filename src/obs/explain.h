// Cycle-attribution "explain" report (DESIGN.md §9): turns one FlexCL
// estimate into a structured answer to *why* the predicted cycle count is
// what it is — per-component breakdown (compute / memory / fill-drain /
// dispatch, summing exactly to the total), the effective parallelism the
// model settled on, and the bottleneck diagnosis with restructuring hints.
// Rendered as a text table (`flexcl explain`) and as JSON (--format json,
// --metrics consumers, CI).
#pragma once

#include <string>

#include "model/bottleneck.h"
#include "model/flexcl.h"

namespace flexcl::obs {

/// Version of the explain JSON schema (first key of ExplainReport::json()).
/// Bumped whenever a key is added, removed or reordered.
inline constexpr int kExplainSchemaVersion = 4;

struct ExplainReport {
  std::string kernel;
  std::string device;
  model::DesignPoint design;
  model::Estimate estimate;             ///< includes the CycleBreakdown
  model::BottleneckReport bottleneck;
  /// Static-profile tier surface: the exactness verdict ("exact" |
  /// "approximate" | "unsupported"), its blocking reason (empty for exact)
  /// and the provenance of the profile the estimate consumed ("synthesized"
  /// | "interpreted"). All empty when unknown (buildExplainReport from a
  /// bare estimate) — rendered as null then.
  std::string staticProfileVerdict;
  std::string staticProfileReason;
  std::string profileProvenance;
  /// Race-verifier surface (DESIGN.md §15): the kernel verdict ("race-free"
  /// | "racy" | "unknown") and its reason (witness summary / first blocking
  /// reason, empty for race-free). Empty when unknown (bare estimate) —
  /// rendered as null then.
  std::string raceVerdict;
  std::string raceReason;

  /// Human-readable report: metadata lines, the component table
  /// (cycles + share per component, footer row asserting the sum), and the
  /// bottleneck hints.
  [[nodiscard]] std::string text() const;
  /// One JSON object with the same content, machine-readable.
  [[nodiscard]] std::string json() const;
};

/// Runs the model on (launch, design) and assembles the report. The estimate
/// may have failed (estimate.ok == false); both renderers surface the error.
ExplainReport explainEstimate(model::FlexCl& flexcl,
                              const model::LaunchInfo& launch,
                              const model::DesignPoint& design,
                              const std::string& kernelName);

/// Assembles a report from an already-computed estimate (bench/DSE callers
/// that want attribution without re-running the model).
ExplainReport buildExplainReport(const model::Estimate& estimate,
                                 const model::DesignPoint& design,
                                 const std::string& kernelName,
                                 const std::string& deviceName);

}  // namespace flexcl::obs
