// Scoped-span tracer emitting Chrome trace_event JSON (DESIGN.md §9).
//
// Instrumented phases (compile, profile, model estimate, simulation, DSE
// passes, pool jobs) open an obs::Span for their dynamic extent; completed
// spans are appended to a process-wide buffer and dumped as the Chrome
// trace-event "complete event" format ("ph":"X"), which chrome://tracing and
// https://ui.perfetto.dev open directly. Each OS thread gets a stable small
// lane id, so a `--jobs N` exploration renders as N worker lanes.
//
// Overhead contract: with the tracer inactive a Span is one relaxed atomic
// load and two branches — no clock reads, no allocation, no locking. Spans
// never feed back into any model/simulator computation; results are
// bit-identical with tracing on or off (asserted in tests/test_obs.cpp).
// Timestamps come from steady_clock only (monotonic; immune to wall-clock
// adjustments).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace flexcl::obs {

/// One completed span, in microseconds relative to Tracer::start().
struct SpanRecord {
  std::string name;      ///< e.g. the design point being evaluated
  const char* category;  ///< phase: "compile", "profile", "model", "sim", ...
  int lane = 0;          ///< per-thread lane ("tid" in the trace JSON)
  int depth = 0;         ///< nesting depth within the lane at open time
  double startUs = 0;
  double durationUs = 0;
  /// Serve request id the span belongs to (0 = outside any request). Spans
  /// inherit it from the thread's current obs::RequestScope at open time, so
  /// one request's compile/profile/model spans correlate across worker lanes
  /// ("request" in the trace args).
  std::uint64_t requestId = 0;
};

class Tracer {
 public:
  static Tracer& global();

  /// Starts collecting: clears the buffer and re-zeroes the time origin.
  void start();
  /// Stops collecting; the buffer is kept for json()/writeTo().
  void stop();
  [[nodiscard]] bool active() const {
    return active_.load(std::memory_order_relaxed);
  }

  /// Copy of the completed spans (tests and post-processing).
  [[nodiscard]] std::vector<SpanRecord> spans() const;
  /// Full Chrome trace: {"traceEvents": [...], "displayTimeUnit": "ms"}.
  [[nodiscard]] std::string json() const;
  /// Writes json() to `path`; false on I/O failure.
  bool writeTo(const std::string& path) const;
  void clear();

  // Internal (Span): record one completed span.
  void record(SpanRecord record);
  /// Microseconds since start(). Monotonic (steady_clock).
  [[nodiscard]] double nowUs() const;
  /// Stable small lane id of the calling thread (assigned on first use).
  static int laneOfThisThread();
  /// Request id newly opened spans on this thread are tagged with (0 = none).
  /// Maintained by obs::RequestScope; returns the previous value so scopes
  /// nest/restore correctly.
  static std::uint64_t setThreadRequestId(std::uint64_t id);
  [[nodiscard]] static std::uint64_t threadRequestId();

 private:
  std::atomic<bool> active_{false};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::chrono::steady_clock::time_point origin_ =
      std::chrono::steady_clock::now();
};

/// RAII span: opens on construction when the tracer is active, records on
/// destruction. The string name is only materialised when active — pass a
/// callable for names that cost something to build (design.str()).
class Span {
 public:
  Span(const char* category, const char* name) : Span(category, [&] {
    return std::string(name);
  }) {}
  Span(const char* category, std::string name)
      : Span(category, [&] { return std::move(name); }) {}

  template <typename NameFn>
  Span(const char* category, NameFn&& nameFn) {
    Tracer& tracer = Tracer::global();
    if (!tracer.active()) return;
    open_ = true;
    record_.category = category;
    record_.name = std::forward<NameFn>(nameFn)();
    record_.lane = Tracer::laneOfThisThread();
    record_.depth = enterLane();
    record_.requestId = Tracer::threadRequestId();
    record_.startUs = tracer.nowUs();
  }

  ~Span() {
    if (!open_) return;
    Tracer& tracer = Tracer::global();
    record_.durationUs = tracer.nowUs() - record_.startUs;
    leaveLane();
    // Record even if the tracer was stopped mid-span: a half-traced phase
    // is more useful than a silently dropped one.
    tracer.record(std::move(record_));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  /// Per-thread nesting depth bookkeeping; returns the depth at entry.
  static int enterLane();
  static void leaveLane();

  bool open_ = false;
  SpanRecord record_;
};

}  // namespace flexcl::obs
