// Request-scoped observability context (DESIGN.md §14).
//
// An obs::RequestScope is the per-request carrier for everything the serving
// stack wants to attribute to one request: the request id (tagged onto every
// Span opened while the scope is current, so one request's compile/profile/
// model spans correlate across worker lanes in the Chrome trace), the
// queue-wait measured by serve::Server, a per-phase timing breakdown
// (parse/context/eval/render/persist) accumulated by serve::Dispatcher, and
// the cache-provenance bit set by the compute lambdas that actually ran.
//
// Scopes are RAII and thread-local: serve::Server installs one at the top of
// each pool job; nested installs (one-shot CLI paths, tests) stack and
// restore. The scope itself is plain bookkeeping — timing calls are gated by
// the caller on obs::requestTimingEnabled(), preserving the overhead
// contract, and nothing recorded here feeds back into model results.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/registry.h"

namespace flexcl::obs {

/// True when per-request clocks should be read at all: observability is on
/// (histograms want samples) or a structured log is open (events want
/// durations). One/two relaxed loads.
[[nodiscard]] inline bool requestTimingEnabled() {
  return enabled() || logEnabled();
}

class RequestScope {
 public:
  /// Installs this scope as the thread's current one and tags subsequently
  /// opened spans with `id` (0 = anonymous, spans stay untagged).
  RequestScope(std::uint64_t id, std::string kind);
  ~RequestScope();

  RequestScope(const RequestScope&) = delete;
  RequestScope& operator=(const RequestScope&) = delete;

  /// The thread's innermost live scope, or nullptr outside any request.
  [[nodiscard]] static RequestScope* current();

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& kind() const { return kind_; }
  void setKind(std::string kind) { kind_ = std::move(kind); }

  void setQueueWaitUs(double us) { queueWaitUs_ = us; }
  [[nodiscard]] double queueWaitUs() const { return queueWaitUs_; }

  /// Accumulates `us` into phase `name` (summed across repeat visits, e.g.
  /// several store writes in one request).
  void addPhaseUs(const std::string& name, double us);
  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases()
      const {
    return phases_;
  }

  /// Marks that at least one compute lambda ran (a cache miss somewhere);
  /// unset means the request was served entirely from caches.
  void markComputed() { computed_ = true; }
  [[nodiscard]] bool computed() const { return computed_; }
  /// "miss" if any compute ran, else "hit".
  [[nodiscard]] const char* provenance() const {
    return computed_ ? "miss" : "hit";
  }

 private:
  std::uint64_t id_;
  std::string kind_;
  double queueWaitUs_ = -1;
  bool computed_ = false;
  std::vector<std::pair<std::string, double>> phases_;
  RequestScope* previous_;
  std::uint64_t previousTraceId_;
};

/// RAII phase timer: on destruction adds the elapsed time to phase `name` of
/// `scope`. Reads no clock when `scope` is null or timing is disabled at
/// construction.
class PhaseTimer {
 public:
  PhaseTimer(RequestScope* scope, const char* name)
      : scope_(scope), name_(name) {
    if (scope_ != nullptr && requestTimingEnabled()) startUs_ = monotonicUs();
  }
  ~PhaseTimer() {
    if (scope_ != nullptr && startUs_ >= 0) {
      scope_->addPhaseUs(name_, monotonicUs() - startUs_);
    }
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  RequestScope* scope_;
  const char* name_;
  double startUs_ = -1;
};

}  // namespace flexcl::obs
