#include "obs/explain.h"

#include <array>
#include <cmath>
#include <sstream>

#include "support/text_table.h"

namespace flexcl::obs {
namespace {

double sharePct(double part, double total) {
  return total > 0 ? 100.0 * part / total : 0.0;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

struct Component {
  const char* name;
  double cycles;
};

std::array<Component, 4> components(const model::CycleBreakdown& b) {
  return {{{"compute", b.compute},
           {"memory", b.memory},
           {"fill-drain", b.fillDrain},
           {"dispatch", b.dispatch}}};
}

}  // namespace

ExplainReport buildExplainReport(const model::Estimate& estimate,
                                 const model::DesignPoint& design,
                                 const std::string& kernelName,
                                 const std::string& deviceName) {
  ExplainReport report;
  report.kernel = kernelName;
  report.device = deviceName;
  report.design = design;
  report.estimate = estimate;
  report.bottleneck = model::diagnose(estimate, design);
  return report;
}

ExplainReport explainEstimate(model::FlexCl& flexcl,
                              const model::LaunchInfo& launch,
                              const model::DesignPoint& design,
                              const std::string& kernelName) {
  const model::Estimate est = flexcl.estimate(launch, design);
  ExplainReport report =
      buildExplainReport(est, design, kernelName, flexcl.device().name);
  const auto verdict = flexcl.staticVerdict(launch, design);
  report.staticProfileVerdict = verdict.name();
  report.staticProfileReason = verdict.reason;
  report.profileProvenance =
      flexcl.profileFor(launch, design).provenance ==
              interp::KernelProfile::Provenance::Synthesized
          ? "synthesized"
          : "interpreted";
  const analysis::raceverify::RaceVerdict& race =
      flexcl.raceVerdictFor(launch, design);
  report.raceVerdict = race.name();
  report.raceReason = race.reason;
  return report;
}

std::string ExplainReport::text() const {
  std::ostringstream os;
  os << "kernel   : " << kernel << " (" << device << ")\n";
  os << "design   : " << design.str() << "\n";
  if (!estimate.ok) {
    os << "estimate failed: " << estimate.error << "\n";
    return os.str();
  }
  os << "mode     : " << model::commModeName(estimate.mode)
     << (estimate.barrierCount > 0 ? " (forced by barrier intrinsics)" : "")
     << "\n";
  if (!profileProvenance.empty()) {
    os << "profile  : " << profileProvenance << " (static tier: "
       << staticProfileVerdict;
    if (!staticProfileReason.empty()) os << ", " << staticProfileReason;
    os << ")\n";
  }
  if (!raceVerdict.empty()) {
    os << "races    : " << raceVerdict;
    if (!raceReason.empty()) os << " (" << raceReason << ")";
    os << "\n";
  }
  os.precision(1);
  os << std::fixed;
  os << "parallel : " << estimate.cu.effectivePes << " PEs x "
     << estimate.kernelCompute.effectiveCus << " CUs effective, "
     << estimate.totalWorkItems << " work-items\n";
  os << "pipeline : II_comp " << estimate.pe.iiComp << " (RecMII "
     << estimate.pe.recMii << " / ResMII " << estimate.pe.resMii
     << "), II_wi " << estimate.iiWi << ", depth " << estimate.pe.depth
     << ", L_mem/wi " << estimate.memory.lMemWi << "\n\n";

  TextTable table({"component", "cycles", "share"});
  const model::CycleBreakdown& b = estimate.breakdown;
  for (const auto& [name, cycles] : components(b)) {
    std::ostringstream share;
    share.precision(1);
    share << std::fixed << sharePct(cycles, estimate.cycles) << "%";
    table.row().cell(name).cell(cycles, 0).cell(share.str());
  }
  table.row().cell("total").cell(b.total(), 0).cell("100.0%");
  os << table.str();

  os.precision(0);
  os << "\npredicted: " << estimate.cycles << " cycles = ";
  os.precision(3);
  os << estimate.milliseconds << " ms; binding component: " << b.binding()
     << "\n";
  os << bottleneck.str();
  return os.str();
}

std::string ExplainReport::json() const {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  // schema_version is always the first key; the key order below is part of
  // the schema and pinned by the explain golden test.
  os << "{\"schema_version\": " << kExplainSchemaVersion
     << ", \"kernel\": \"" << jsonEscape(kernel) << "\", \"device\": \""
     << jsonEscape(device) << "\", \"design\": \"" << jsonEscape(design.str())
     << "\", \"ok\": " << (estimate.ok ? "true" : "false");
  if (!estimate.ok) {
    os << ", \"error\": \"" << jsonEscape(estimate.error) << "\"}";
    return os.str();
  }
  const model::CycleBreakdown& b = estimate.breakdown;
  os << ", \"mode\": \"" << model::commModeName(estimate.mode) << "\""
     << ", \"cycles\": " << estimate.cycles
     << ", \"milliseconds\": " << estimate.milliseconds
     << ", \"breakdown\": {";
  bool first = true;
  for (const auto& [name, cycles] : components(b)) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << name << "\": " << cycles;
  }
  os << ", \"total\": " << b.total() << ", \"binding\": \"" << b.binding()
     << "\"}"
     << ", \"parallel\": {\"effective_pes\": " << estimate.cu.effectivePes
     << ", \"effective_cus\": " << estimate.kernelCompute.effectiveCus
     << ", \"work_items\": " << estimate.totalWorkItems << "}"
     << ", \"pipeline\": {\"ii_comp\": " << estimate.pe.iiComp
     << ", \"rec_mii\": " << estimate.pe.recMii
     << ", \"res_mii\": " << estimate.pe.resMii
     << ", \"ii_wi\": " << estimate.iiWi
     << ", \"depth\": " << estimate.pe.depth
     << ", \"l_mem_wi\": " << estimate.memory.lMemWi << "}"
     << ", \"bottleneck\": {\"primary\": \""
     << model::bottleneckName(bottleneck.primary)
     << "\", \"severity\": " << bottleneck.severity << ", \"hints\": [";
  first = true;
  for (const std::string& hint : bottleneck.hints) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << jsonEscape(hint) << "\"";
  }
  os << "]}";
  os << ", \"static_profile\": ";
  if (staticProfileVerdict.empty()) {
    os << "null";
  } else {
    os << "{\"verdict\": \"" << jsonEscape(staticProfileVerdict)
       << "\", \"reason\": \"" << jsonEscape(staticProfileReason)
       << "\", \"provenance\": \"" << jsonEscape(profileProvenance) << "\"}";
  }
  os << ", \"race\": ";
  if (raceVerdict.empty()) {
    os << "null";
  } else {
    os << "{\"verdict\": \"" << jsonEscape(raceVerdict)
       << "\", \"reason\": \"" << jsonEscape(raceReason) << "\"}";
  }
  os << "}";
  return os.str();
}

}  // namespace flexcl::obs
