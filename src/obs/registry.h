// Process-wide observability counter/gauge registry (DESIGN.md §9).
//
// One place for every subsystem's "how often / how much" numbers:
// hierarchical dot-separated names (`dram.row_hit`, `pool.jobs_executed`,
// `cache.compile.hits`), lock-free-ish atomic increments, and a JSON
// snapshot consumed by `flexcl --metrics`, the bench harness and CI.
//
// Overhead contract: everything is gated on one relaxed atomic bool
// (`obs::enabled()`); with observability off the helpers are a single load
// and branch, no allocation, no locking. Call sites in hot loops must batch
// (accumulate locally, publish once per phase) — the registry is for
// phase-grained accounting, not per-access increments. Counters never
// influence model or simulator results: bit-identical output with
// observability on or off is asserted in tests/test_obs.cpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flexcl::obs {

/// Microseconds since an arbitrary process-stable origin (steady_clock).
/// The shared timebase for request scopes, queue-wait accounting and the
/// structured log — monotonic, immune to wall-clock adjustments.
[[nodiscard]] double monotonicUs();

/// Monotonic counter. Increments are relaxed atomics: totals are exact,
/// cross-counter ordering is not promised. Wraps modulo 2^64.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time copy of one histogram's buckets. Quantiles, max and mean
/// are all derived from the bucket counts (never from side state), so two
/// snapshots subtract cleanly: deltaSince() yields the distribution of just
/// the samples recorded between them — the histogram analogue of the
/// CounterSnapshot::deltaSince per-run accounting fix (DESIGN.md §11/§14).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0;
  /// Per-bucket sample counts, Histogram::kBucketCount entries (empty means
  /// a default-constructed snapshot — treated as all zeroes).
  std::vector<std::uint64_t> buckets;

  /// Value at quantile `q` in [0, 1]: the midpoint of the bucket holding the
  /// rank-`ceil(q*count)` sample. 0 when the snapshot is empty. Resolution is
  /// the bucket width (<= 12.5% relative).
  [[nodiscard]] double quantile(double q) const;
  /// Upper bound of the highest non-empty bucket (0 when empty).
  [[nodiscard]] double maxValue() const;
  [[nodiscard]] double mean() const {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }

  /// Distribution of the samples recorded since `baseline` (bucket-wise
  /// subtraction, clamped at zero like CounterSnapshot::deltaSince).
  [[nodiscard]] HistogramSnapshot deltaSince(const HistogramSnapshot& baseline) const;
  /// Merges another snapshot's samples in (bucket-wise addition).
  HistogramSnapshot& operator+=(const HistogramSnapshot& other);

  /// {"count": N, "p50": x, "p90": x, "p99": x, "max": x, "mean": x},
  /// key order pinned (golden-tested; values rendered fixed 3 decimals).
  [[nodiscard]] std::string json() const;
};

/// Log-bucketed (HDR-style) latency histogram. Values land in one of
/// 1 + 64*kSubBuckets buckets: bucket 0 holds [0, 1), then each power of two
/// [2^e, 2^(e+1)) is split into kSubBuckets linear sub-buckets, bounding the
/// relative quantile error at 1/kSubBuckets. record() is two relaxed atomic
/// increments plus one relaxed fp-add — no locking, no allocation — so it is
/// safe on the serving path; like counters, histogram samples never feed back
/// into model or simulator results (bit-identity asserted in tests/test_obs).
class Histogram {
 public:
  static constexpr int kSubBuckets = 8;
  static constexpr int kBucketCount = 1 + 64 * kSubBuckets;

  /// Records one sample. Negative/NaN values count into bucket 0.
  void record(double value) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? value : 0.0, std::memory_order_relaxed);
    buckets_[static_cast<std::size_t>(bucketIndex(value))].fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

  /// Bucket of `value` (exposed for the bucketing-scheme tests).
  static int bucketIndex(double value);
  /// Inclusive lower / exclusive upper bound of `index`.
  static double bucketLow(int index);
  static double bucketHigh(int index);

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
};

/// Named counters + gauges. Registration is mutex-protected; the returned
/// Counter& stays valid for the registry's lifetime (values are
/// heap-allocated and never erased, only zeroed by reset()).
class Registry {
 public:
  /// The process-wide registry used by all instrumentation sites.
  static Registry& global();

  /// Returns the counter registered under `name`, creating it on first use.
  Counter& counter(std::string_view name);

  /// Returns the histogram registered under `name`, creating it on first use.
  /// Same lifetime guarantee as counter(): the reference stays valid forever.
  Histogram& histogram(std::string_view name);

  /// Sets (overwrites) a point-in-time gauge, e.g. a cache hit count
  /// snapshotted from runtime::Stats or a measured wall time.
  void setGauge(std::string_view name, double value);

  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0;
  };
  struct HistogramSample {
    std::string name;
    HistogramSnapshot value;
  };
  /// Name-sorted snapshots (counters with value 0 are included: a registered
  /// counter that never fired is itself a signal).
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;
  [[nodiscard]] std::vector<HistogramSample> histograms() const;

  /// {"counters": {name: value, ...}, "gauges": {name: value, ...},
  /// "histograms": {name: {"count": ..., "p50": ...}, ...}}, keys sorted.
  [[nodiscard]] std::string json() const;

  /// Zeroes every counter and histogram and drops all gauges. Counter and
  /// histogram references handed out earlier remain valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Master switch for counter collection (spans have their own switch on the
/// tracer). Off by default; flip with setEnabled. One relaxed load to test.
[[nodiscard]] bool enabled();
void setEnabled(bool on);

/// Shorthand for Registry::global().counter(name).
Counter& counter(std::string_view name);

/// Bumps `name` by `n` iff observability is enabled. The one-liner used by
/// instrumentation sites that publish phase totals.
inline void add(std::string_view name, std::uint64_t n = 1) {
  if (enabled()) counter(name).add(n);
}

/// Sets gauge `name` iff observability is enabled.
void setGauge(std::string_view name, double value);

/// Shorthand for Registry::global().histogram(name).
Histogram& histogram(std::string_view name);

/// Records one sample (typically a latency in microseconds) into histogram
/// `name` iff observability is enabled — the histogram analogue of add().
inline void record(std::string_view name, double value) {
  if (enabled()) histogram(name).record(value);
}

}  // namespace flexcl::obs
