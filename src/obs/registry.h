// Process-wide observability counter/gauge registry (DESIGN.md §9).
//
// One place for every subsystem's "how often / how much" numbers:
// hierarchical dot-separated names (`dram.row_hit`, `pool.jobs_executed`,
// `cache.compile.hits`), lock-free-ish atomic increments, and a JSON
// snapshot consumed by `flexcl --metrics`, the bench harness and CI.
//
// Overhead contract: everything is gated on one relaxed atomic bool
// (`obs::enabled()`); with observability off the helpers are a single load
// and branch, no allocation, no locking. Call sites in hot loops must batch
// (accumulate locally, publish once per phase) — the registry is for
// phase-grained accounting, not per-access increments. Counters never
// influence model or simulator results: bit-identical output with
// observability on or off is asserted in tests/test_obs.cpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace flexcl::obs {

/// Monotonic counter. Increments are relaxed atomics: totals are exact,
/// cross-counter ordering is not promised. Wraps modulo 2^64.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Named counters + gauges. Registration is mutex-protected; the returned
/// Counter& stays valid for the registry's lifetime (values are
/// heap-allocated and never erased, only zeroed by reset()).
class Registry {
 public:
  /// The process-wide registry used by all instrumentation sites.
  static Registry& global();

  /// Returns the counter registered under `name`, creating it on first use.
  Counter& counter(std::string_view name);

  /// Sets (overwrites) a point-in-time gauge, e.g. a cache hit count
  /// snapshotted from runtime::Stats or a measured wall time.
  void setGauge(std::string_view name, double value);

  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0;
  };
  /// Name-sorted snapshots (counters with value 0 are included: a registered
  /// counter that never fired is itself a signal).
  [[nodiscard]] std::vector<CounterSample> counters() const;
  [[nodiscard]] std::vector<GaugeSample> gauges() const;

  /// {"counters": {name: value, ...}, "gauges": {name: value, ...}},
  /// keys sorted.
  [[nodiscard]] std::string json() const;

  /// Zeroes every counter and drops all gauges. Counter references handed
  /// out earlier remain valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
};

/// Master switch for counter collection (spans have their own switch on the
/// tracer). Off by default; flip with setEnabled. One relaxed load to test.
[[nodiscard]] bool enabled();
void setEnabled(bool on);

/// Shorthand for Registry::global().counter(name).
Counter& counter(std::string_view name);

/// Bumps `name` by `n` iff observability is enabled. The one-liner used by
/// instrumentation sites that publish phase totals.
inline void add(std::string_view name, std::uint64_t n = 1) {
  if (enabled()) counter(name).add(n);
}

/// Sets gauge `name` iff observability is enabled.
void setGauge(std::string_view name, double value);

}  // namespace flexcl::obs
