#include <gtest/gtest.h>

#include "ir/lower.h"
#include "ir/printer.h"
#include "ir/verifier.h"

namespace flexcl::ir {
namespace {

std::unique_ptr<CompiledProgram> compile(const std::string& src,
                                         DiagnosticEngine* diagsOut = nullptr) {
  DiagnosticEngine diags;
  auto compiled = compileOpenCl(src, diags);
  if (diagsOut) *diagsOut = diags;
  return compiled;
}

const Region* findLoop(const Region* region) {
  if (!region) return nullptr;
  if (region->kind == Region::Kind::Loop) return region;
  for (const auto& child : region->children) {
    if (const Region* found = findLoop(child.get())) return found;
  }
  return nullptr;
}

TEST(Lower, MinimalKernelVerifies) {
  DiagnosticEngine diags;
  auto c = compile(
      "__kernel void add(__global float* a, __global float* b, __global float* c) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i] + b[i];\n"
      "}\n",
      &diags);
  ASSERT_TRUE(c) << diags.str();
  Function* fn = c->module->findFunction("add");
  ASSERT_NE(fn, nullptr);
  EXPECT_TRUE(fn->isKernel);
  EXPECT_TRUE(verifyFunction(*fn).empty());
  // Expect a global load for a[i], b[i] and a global store for c[i].
  int globalLoads = 0, globalStores = 0;
  for (const auto& bb : fn->blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      if (inst->opcode() == Opcode::Load && inst->memSpace == AddressSpace::Global)
        ++globalLoads;
      if (inst->opcode() == Opcode::Store && inst->memSpace == AddressSpace::Global)
        ++globalStores;
    }
  }
  EXPECT_EQ(globalLoads, 2);
  EXPECT_EQ(globalStores, 1);
}

TEST(Lower, StaticTripCountDetected) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "  for (int i = 0; i < 128; i++) { a[i] = i; }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  const Region* loop = findLoop(fn->rootRegion());
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->staticTripCount, 128);
}

TEST(Lower, StaticTripCountVariants) {
  struct Case {
    const char* header;
    std::int64_t expected;
  };
  const Case cases[] = {
      {"for (int i = 0; i < 10; i++)", 10},
      {"for (int i = 0; i <= 10; i++)", 11},
      {"for (int i = 10; i > 0; i--)", 10},
      {"for (int i = 10; i >= 0; i--)", 11},
      {"for (int i = 0; i < 10; i += 3)", 4},
      {"for (int i = 0; i < 16; i = i + 4)", 4},
      {"for (int i = 16; i > 0; i -= 4)", 4},
  };
  for (const Case& tc : cases) {
    std::string src = "__kernel void k(__global int* a) { int s = 0;\n" +
                      std::string(tc.header) + " { s += 1; }\n a[0] = s; }\n";
    auto c = compile(src);
    ASSERT_TRUE(c) << tc.header;
    const Region* loop = findLoop(c->module->findFunction("k")->rootRegion());
    ASSERT_NE(loop, nullptr) << tc.header;
    EXPECT_EQ(loop->staticTripCount, tc.expected) << tc.header;
  }
}

TEST(Lower, DynamicTripCountWhenBoundIsArgument) {
  auto c = compile(
      "__kernel void k(__global int* a, int n) {\n"
      "  for (int i = 0; i < n; i++) { a[i] = i; }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Region* loop = findLoop(c->module->findFunction("k")->rootRegion());
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->staticTripCount, -1);
}

TEST(Lower, TripCountUnknownWhenBodyModifiesInduction) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "  for (int i = 0; i < 128; i++) { if (a[i] > 0) { i += 2; } }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Region* loop = findLoop(c->module->findFunction("k")->rootRegion());
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->staticTripCount, -1);
}

TEST(Lower, UnrollHintPropagates) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "#pragma unroll 8\n"
      "  for (int i = 0; i < 64; i++) { a[i] = i; }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Region* loop = findLoop(c->module->findFunction("k")->rootRegion());
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->unrollHint, 8);
}

TEST(Lower, NestedLoopsGetDistinctIds) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "  for (int i = 0; i < 4; i++) {\n"
      "    for (int j = 0; j < 8; j++) { a[i * 8 + j] = i + j; }\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  EXPECT_EQ(fn->loopCount, 2);
  const Region* outer = findLoop(fn->rootRegion());
  ASSERT_NE(outer, nullptr);
  const Region* inner = findLoop(outer->children[0].get());
  ASSERT_NE(inner, nullptr);
  EXPECT_NE(outer->loopId, inner->loopId);
  EXPECT_EQ(outer->staticTripCount, 4);
  EXPECT_EQ(inner->staticTripCount, 8);
}

TEST(Lower, InlinedHelperProducesNoCallInstructions) {
  auto c = compile(
      "float sq(float x) { return x * x; }\n"
      "__kernel void k(__global float* a) { a[0] = sq(a[1]) + sq(a[2]); }\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  // Only math-builtin Call instructions are allowed; helper calls must be
  // inlined away.
  int mulCount = 0;
  for (const auto& bb : fn->blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      EXPECT_NE(inst->opcode(), Opcode::Call);
      if (inst->opcode() == Opcode::FMul) ++mulCount;
    }
  }
  EXPECT_EQ(mulCount, 2);  // two inline expansions
}

TEST(Lower, BarrierLowersToBarrierInstruction) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "  __local int t[4];\n"
      "  t[get_local_id(0)] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = t[0];\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  int barriers = 0;
  for (const auto& bb : fn->blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      if (inst->opcode() == Opcode::Barrier) ++barriers;
    }
  }
  EXPECT_EQ(barriers, 1);
  EXPECT_EQ(fn->localAllocas.size(), 1u);
}

TEST(Lower, LocalArrayGoesToLocalAllocaList) {
  auto c = compile(
      "__kernel void k(__global float* a) {\n"
      "  __local float tile[16][17];\n"
      "  tile[0][0] = a[0];\n"
      "  a[1] = tile[0][0];\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  ASSERT_EQ(fn->localAllocas.size(), 1u);
  EXPECT_EQ(fn->localAllocas[0]->allocaType->sizeInBytes(), 16u * 17u * 4u);
}

TEST(Lower, PrinterProducesStableText) {
  auto c = compile(
      "__kernel void k(__global int* a) { a[get_global_id(0)] = 7; }\n");
  ASSERT_TRUE(c);
  Function* fn = c->module->findFunction("k");
  const std::string text = printFunction(*fn);
  EXPECT_NE(text.find("kernel @k"), std::string::npos);
  EXPECT_NE(text.find("wi.query global_id"), std::string::npos);
  EXPECT_NE(text.find("store.global"), std::string::npos);
}

TEST(Lower, IfProducesIfRegion) {
  auto c = compile(
      "__kernel void k(__global int* a, int n) {\n"
      "  if (n > 0) { a[0] = 1; } else { a[0] = 2; }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  bool foundIf = false;
  const Region* root = fn->rootRegion();
  for (const auto& child : root->children) {
    if (child->kind == Region::Kind::If) {
      foundIf = true;
      EXPECT_EQ(child->children.size(), 2u);
      EXPECT_NE(child->condBlock, nullptr);
    }
  }
  EXPECT_TRUE(foundIf);
}

TEST(Lower, EveryBlockTerminated) {
  auto c = compile(
      "__kernel void k(__global int* a, int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i == 3) continue;\n"
      "    if (i == 7) break;\n"
      "    a[i] = i;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  EXPECT_TRUE(verifyFunction(*fn).empty());
  for (const auto& bb : fn->blocks()) {
    EXPECT_NE(bb->terminator(), nullptr) << bb->name();
  }
}

TEST(Lower, VectorOpsLowerToVectorTypedInstructions) {
  auto c = compile(
      "__kernel void k(__global float4* a, __global float4* b) {\n"
      "  b[0] = a[0] * a[1] + a[2];\n"
      "}\n");
  ASSERT_TRUE(c);
  const Function* fn = c->module->findFunction("k");
  bool sawVectorMul = false;
  for (const auto& bb : fn->blocks()) {
    for (const Instruction* inst : bb->instructions()) {
      if (inst->opcode() == Opcode::FMul && inst->type()->isVector()) {
        sawVectorMul = true;
      }
    }
  }
  EXPECT_TRUE(sawVectorMul);
}

}  // namespace
}  // namespace flexcl::ir
