#include <gtest/gtest.h>

#include "ir/lower.h"
#include "sim/cu_pipeline.h"
#include "sim/system_sim.h"

namespace flexcl::sim {
namespace {

struct Fixture {
  std::unique_ptr<ir::CompiledProgram> program;
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<interp::KernelArg> args;
  interp::NdRange range;

  explicit Fixture(
      const std::string& src =
          "__kernel void k(__global const float* a, __global float* b) {\n"
          "  int i = get_global_id(0);\n"
          "  b[i] = a[i] * 2.0f + 1.0f;\n"
          "}\n",
      std::uint64_t globalSize = 512, std::uint64_t wg = 64) {
    DiagnosticEngine diags;
    program = ir::compileOpenCl(src, diags);
    EXPECT_TRUE(program) << diags.str();
    buffers = {std::vector<std::uint8_t>(globalSize * 4, 1),
               std::vector<std::uint8_t>(globalSize * 4)};
    args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    range.global = {globalSize, 1, 1};
    range.local = {wg, 1, 1};
  }

  SimInput input() {
    return prepareSimInput(*program->module->functions().front(), range, args,
                           buffers);
  }
};

TEST(SimInput, CapturesPerWorkItemChains) {
  Fixture f;
  SimInput input = f.input();
  ASSERT_TRUE(input.ok) << input.error;
  ASSERT_EQ(input.workItemCount(), 512u);
  for (std::uint64_t wi = 0; wi < input.workItemCount(); ++wi) {
    EXPECT_EQ(input.chainLength(wi), 2u);  // one read, one write
    EXPECT_EQ(input.chainBegin(wi)[0].workItem, wi);
  }
  EXPECT_FALSE(input.hasBarriers);
  EXPECT_TRUE(input.profile.ok);
}

TEST(SimInput, DetectsBarriers) {
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  __local float t[64];\n"
      "  t[get_local_id(0)] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[get_global_id(0)] = t[0];\n"
      "}\n");
  SimInput input = f.input();
  ASSERT_TRUE(input.ok);
  EXPECT_TRUE(input.hasBarriers);
}

TEST(Sim, ProducesPositiveCycles) {
  Fixture f;
  SimInput input = f.input();
  SimResult r = simulate(input, model::Device::virtex7(), model::DesignPoint{});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.cycles, 0.0);
  EXPECT_GT(r.dramAccesses, 0u);
  EXPECT_EQ(r.workGroups, 8u);
}

TEST(Sim, DeterministicForSameSeed) {
  Fixture f;
  SimInput input = f.input();
  SimResult a = simulate(input, model::Device::virtex7(), model::DesignPoint{});
  SimResult b = simulate(input, model::Device::virtex7(), model::DesignPoint{});
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

TEST(Sim, DifferentDesignsGetDifferentHardwareRealisations) {
  Fixture f;
  SimInput input = f.input();
  model::DesignPoint a;
  model::DesignPoint b;
  b.peParallelism = 2;
  SimResult ra = simulate(input, model::Device::virtex7(), a);
  SimResult rb = simulate(input, model::Device::virtex7(), b);
  ASSERT_TRUE(ra.ok);
  ASSERT_TRUE(rb.ok);
  EXPECT_EQ(rb.effectivePes, 2);
  EXPECT_LT(rb.cycles, ra.cycles);  // 2 PEs process the group faster
}

TEST(Sim, MoreComputeUnitsNotSlower) {
  Fixture f;
  SimInput input = f.input();
  model::DesignPoint one;
  model::DesignPoint four;
  four.numComputeUnits = 4;
  SimResult r1 = simulate(input, model::Device::virtex7(), one);
  SimResult r4 = simulate(input, model::Device::virtex7(), four);
  EXPECT_LT(r4.cycles, r1.cycles * 1.05);
}

TEST(Sim, PipeliningHelps) {
  // Compute-heavy kernel (memory-bound ones are DRAM-limited either way).
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float x = a[i];\n"
      "  b[i] = sqrt(exp(x) + log(x + 2.0f)) * x + 1.0f;\n"
      "}\n");
  SimInput input = f.input();
  model::DesignPoint pipe;
  model::DesignPoint noPipe;
  noPipe.workItemPipeline = false;
  SimResult rp = simulate(input, model::Device::virtex7(), pipe);
  SimResult rn = simulate(input, model::Device::virtex7(), noPipe);
  EXPECT_LT(rp.cycles, rn.cycles);
}

TEST(Sim, LatencySpreadPerturbsRealisation) {
  Fixture f;
  SimInput input = f.input();
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 2;
  SimResult ra = simulate(input, model::Device::virtex7(), model::DesignPoint{}, a);
  SimResult rb = simulate(input, model::Device::virtex7(), model::DesignPoint{}, b);
  // Different seeds realise different IP latencies; both stay in a sane band.
  EXPECT_NE(ra.cycles, rb.cycles);
  EXPECT_LT(std::abs(ra.cycles - rb.cycles) / ra.cycles, 0.5);
}

TEST(Sim, RejectsMisalignedRange) {
  Fixture f;
  f.range.local = {100, 1, 1};  // does not divide 512
  SimInput input = f.input();
  // prepareSimInput runs the interpreter which already rejects this.
  EXPECT_FALSE(input.ok);
}

TEST(Sim, WorkItemsOfGroupMatchInterpreterNumbering) {
  interp::NdRange range;
  range.global = {8, 4, 1};
  range.local = {4, 2, 1};
  // Group (1,1): global ids x in 4..7, y in 2..3 -> linear = x + y*8.
  const auto wis = workItemsOfGroup(range, 1 + 1 * 2);
  ASSERT_EQ(wis.size(), 8u);
  EXPECT_EQ(wis[0], 4u + 2u * 8u);
  EXPECT_EQ(wis[1], 5u + 2u * 8u);
  EXPECT_EQ(wis[4], 4u + 3u * 8u);
}


TEST(Sim, BarrierKernelMemoryPhaseSerialises) {
  // Same computation with and without a barrier staging through local
  // memory: the barrier version serialises the work-group's transfers.
  Fixture direct(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  b[get_global_id(0)] = a[get_global_id(0)];\n"
      "}\n");
  Fixture staged(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  __local float t[64];\n"
      "  t[get_local_id(0)] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[get_global_id(0)] = t[get_local_id(0)];\n"
      "}\n");
  SimInput di = direct.input();
  SimInput si = staged.input();
  SimResult rd = simulate(di, model::Device::virtex7(), model::DesignPoint{});
  SimResult rs = simulate(si, model::Device::virtex7(), model::DesignPoint{});
  ASSERT_TRUE(rd.ok);
  ASSERT_TRUE(rs.ok);
  EXPECT_GT(rs.cycles, rd.cycles);
}

}  // namespace
}  // namespace flexcl::sim
