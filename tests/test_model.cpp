#include <gtest/gtest.h>

#include <cmath>

#include "dse/design_space.h"
#include "ir/lower.h"
#include "model/bottleneck.h"
#include "model/flexcl.h"
#include "sdaccel/sdaccel_estimator.h"
#include "workloads/workload.h"

namespace flexcl::model {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto c = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(c) << diags.str();
  return c;
}

/// Simple streaming kernel + data used across model tests.
struct Fixture {
  std::unique_ptr<ir::CompiledProgram> program;
  std::vector<std::vector<std::uint8_t>> buffers;
  LaunchInfo launch;

  explicit Fixture(
      const std::string& src =
          "__kernel void k(__global const float* a, __global float* b) {\n"
          "  int i = get_global_id(0);\n"
          "  b[i] = a[i] * 2.0f + 1.0f;\n"
          "}\n",
      std::uint64_t globalSize = 1024) {
    program = compile(src);
    buffers = {std::vector<std::uint8_t>(globalSize * 4, 1),
               std::vector<std::uint8_t>(globalSize * 4)};
    launch.fn = program->module->functions().front().get();
    launch.range.global = {globalSize, 1, 1};
    launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    launch.buffers = &buffers;
  }
};

TEST(Device, Presets) {
  const Device v7 = Device::virtex7();
  const Device ku = Device::ku060();
  EXPECT_GT(v7.totalDsp, ku.totalDsp);
  EXPECT_GT(v7.bramBytes(), 0u);
  EXPECT_DOUBLE_EQ(v7.cyclesToMs(200000), 1.0);  // 200k cycles @ 200MHz = 1ms
}

TEST(DesignPoint, StableIdDistinguishesPoints) {
  DesignPoint a, b;
  b.peParallelism = 2;
  EXPECT_NE(a.stableId(), b.stableId());
  DesignPoint c = a;
  EXPECT_EQ(a.stableId(), c.stableId());
}

TEST(DesignPoint, StringRendering) {
  DesignPoint dp;
  dp.workGroupSize = {16, 16, 1};
  dp.numComputeUnits = 3;
  const std::string s = dp.str();
  EXPECT_NE(s.find("wg=16x16"), std::string::npos);
  EXPECT_NE(s.find("CU=3"), std::string::npos);
}

TEST(PeModel, PipeliningReducesIi) {
  // Compute-heavy kernel: for a purely memory-bound one, II is DRAM-limited
  // and pipelining legitimately cannot help.
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float x = a[i];\n"
      "  b[i] = sqrt(exp(x) + log(x + 2.0f)) * x + 1.0f;\n"
      "}\n");
  FlexCl model(Device::virtex7());
  DesignPoint pipe;
  DesignPoint noPipe;
  noPipe.workItemPipeline = false;
  const Estimate withPipe = model.estimate(f.launch, pipe);
  const Estimate withoutPipe = model.estimate(f.launch, noPipe);
  ASSERT_TRUE(withPipe.ok);
  ASSERT_TRUE(withoutPipe.ok);
  EXPECT_LT(withPipe.pe.iiComp, withoutPipe.pe.iiComp);
  EXPECT_LT(withPipe.cycles, withoutPipe.cycles);
}

TEST(PeModel, MiiComponentsConsistent) {
  Fixture f;
  FlexCl model(Device::virtex7());
  const Estimate est = model.estimate(f.launch, DesignPoint{});
  ASSERT_TRUE(est.ok);
  EXPECT_EQ(est.pe.mii, std::max(est.pe.recMii, est.pe.resMii));
  EXPECT_GE(est.pe.iiComp, est.pe.mii);
  EXPECT_GE(est.pe.depth, est.pe.iiComp - 1);
}

TEST(PeModel, Equation1) {
  PeModel pe;
  pe.iiComp = 3;
  pe.depth = 20;
  EXPECT_DOUBLE_EQ(peLatency(pe, 64), 3.0 * 63 + 20);
  EXPECT_DOUBLE_EQ(peLatency(pe, 1), 20);
}

TEST(CuModel, Equation5Interleaving) {
  PeModel pe;
  pe.iiComp = 2;
  pe.depth = 10;
  DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  dp.peParallelism = 4;
  const CuModel cu = buildCuModel(pe, Device::virtex7(), dp);
  EXPECT_EQ(cu.effectivePes, 4);
  EXPECT_DOUBLE_EQ(cu.latency, 2.0 * std::ceil((64.0 - 4) / 4) + 10);
}

TEST(CuModel, LocalPortsClampParallelism) {
  PeModel pe;
  pe.iiComp = 1;
  pe.depth = 5;
  pe.localReads = 8;  // 8 reads per cycle demanded per PE
  DesignPoint dp;
  dp.peParallelism = 8;
  CuModel::Limiter limiter;
  const int pes = effectivePeParallelism(pe, Device::virtex7(), dp, &limiter);
  EXPECT_LT(pes, 8);
  EXPECT_EQ(limiter, CuModel::Limiter::LocalRead);
}

TEST(CuModel, DspClampsParallelism) {
  PeModel pe;
  pe.iiComp = 1;
  pe.depth = 5;
  pe.dspUnits = 1000;  // resident DSPs per PE
  DesignPoint dp;
  dp.peParallelism = 8;
  dp.numComputeUnits = 4;
  CuModel::Limiter limiter;
  const int pes = effectivePeParallelism(pe, Device::virtex7(), dp, &limiter);
  EXPECT_EQ(limiter, CuModel::Limiter::Dsp);
  EXPECT_LT(pes, 8);
}

TEST(KernelModel, DispatchOverheadBoundsConcurrency) {
  // A tiny work-group finishes faster than the dispatcher can feed CUs, so
  // effective CU parallelism collapses (eq. 8).
  Fixture f;
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  dp.workGroupSize = {2, 1, 1};
  dp.numComputeUnits = 4;
  const Estimate est = model.estimate(f.launch, dp);
  ASSERT_TRUE(est.ok);
  EXPECT_LT(est.kernelCompute.effectiveCus, 4);
}

TEST(KernelModel, BramLimitsCuReplication) {
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  __local float big[16][256];\n"
      "  int l = get_local_id(0);\n"
      "  big[l % 16][l] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[get_global_id(0)] = big[0][l];\n"
      "}\n");
  FlexCl model(Device::virtex7());
  cdfg::KernelAnalysis analysis = model.analysisFor(f.launch, DesignPoint{});
  PeModel pe = buildPeModel(analysis, model.device(), DesignPoint{});
  DesignPoint dp;
  dp.numComputeUnits = 16;
  const int maxCus = maxComputeUnits(analysis, pe, model.device(), dp);
  // 16 KiB of local memory per CU; the chip's BRAM divides it out.
  EXPECT_LE(maxCus, static_cast<int>(model.device().bramBytes() / (16 * 256 * 4)));
}

TEST(MemoryModel, CoalescingReducesAccesses) {
  // A work-item streaming 16 consecutive floats coalesces 16 -> 1.
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float acc = 0.0f;\n"
      "  for (int j = 0; j < 16; j++) { acc += a[i * 16 + j]; }\n"
      "  b[i] = acc;\n"
      "}\n",
      256);
  f.buffers[0].resize(256 * 16 * 4, 1);
  FlexCl model(Device::virtex7());
  const Estimate est = model.estimate(f.launch, DesignPoint{});
  ASSERT_TRUE(est.ok);
  EXPECT_NEAR(est.memory.rawAccessesPerWorkItem, 17.0, 0.1);  // 16 reads + 1 write
  EXPECT_NEAR(est.memory.accessesPerWorkItem, 2.0, 0.1);      // 1 burst + 1 write
}

TEST(MemoryModel, Equation9SumsPatternLatencies) {
  dram::PatternLatencyTable deltaT;
  for (int p = 0; p < dram::kPatternCount; ++p) {
    deltaT.latency[static_cast<std::size_t>(p)] = 10.0 + p;
  }
  interp::KernelProfile profile;
  profile.ok = true;
  profile.profiledWorkItems = 2;
  // Two work-items, one 64-byte read each at the same address: first is a
  // cold miss (RAR miss), second a row hit (RAR hit).
  for (int wi = 0; wi < 2; ++wi) {
    interp::MemoryAccessEvent ev;
    ev.workItem = static_cast<std::uint64_t>(wi);
    ev.buffer = 0;
    ev.offset = 0;
    ev.size = 64;
    ev.isWrite = false;
    profile.globalTrace.push_back(ev);
  }
  const MemoryModel mm = buildMemoryModel(profile, dram::DramConfig{}, deltaT, 1);
  const double expected =
      (deltaT[dram::AccessPattern::RarMiss] + deltaT[dram::AccessPattern::RarHit]) /
      2.0;
  EXPECT_NEAR(mm.lMemWi, expected, 1e-9);
}

TEST(FlexCl, BarrierKernelForcedToBarrierMode) {
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  __local float t[256];\n"
      "  int l = get_local_id(0);\n"
      "  t[l] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[get_global_id(0)] = t[l];\n"
      "}\n");
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  dp.commMode = CommMode::Pipeline;  // requested pipeline, but barriers win
  const Estimate est = model.estimate(f.launch, dp);
  ASSERT_TRUE(est.ok);
  EXPECT_EQ(est.mode, CommMode::Barrier);
  EXPECT_GT(est.barrierCount, 0);
}

TEST(FlexCl, PipelineBeatsBarrierForStreamingKernel) {
  Fixture f;
  FlexCl model(Device::virtex7());
  DesignPoint pipeline;
  pipeline.commMode = CommMode::Pipeline;
  DesignPoint barrier = pipeline;
  barrier.commMode = CommMode::Barrier;
  const Estimate p = model.estimate(f.launch, pipeline);
  const Estimate b = model.estimate(f.launch, barrier);
  ASSERT_TRUE(p.ok);
  ASSERT_TRUE(b.ok);
  // Eq. 10 serialises every work-item's memory latency; eq. 11 overlaps.
  EXPECT_LT(p.cycles, b.cycles);
}

TEST(FlexCl, MoreComputeUnitsNeverSlower) {
  Fixture f;
  FlexCl model(Device::virtex7());
  double last = std::numeric_limits<double>::infinity();
  for (int cu : {1, 2, 4}) {
    DesignPoint dp;
    dp.numComputeUnits = cu;
    const Estimate est = model.estimate(f.launch, dp);
    ASSERT_TRUE(est.ok);
    EXPECT_LE(est.cycles, last * 1.02);  // allow dispatch-overhead wiggle
    last = est.cycles;
  }
}

TEST(FlexCl, WorkGroupClampedToDivisor) {
  Fixture f;
  DesignPoint dp;
  dp.workGroupSize = {100, 1, 1};  // does not divide 1024
  const interp::NdRange r = FlexCl::rangeFor(f.launch, dp);
  EXPECT_EQ(1024u % r.local[0], 0u);
  EXPECT_LE(r.local[0], 100u);
}

TEST(FlexCl, EstimateDeterministic) {
  Fixture f;
  FlexCl model(Device::virtex7());
  const Estimate a = model.estimate(f.launch, DesignPoint{});
  const Estimate b = model.estimate(f.launch, DesignPoint{});
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

TEST(FlexCl, Ku060FasterFloatPipelines) {
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float x = a[i];\n"
      "  b[i] = sqrt(x * x + 3.0f) * 0.5f;\n"
      "}\n");
  FlexCl v7(Device::virtex7());
  FlexCl ku(Device::ku060());
  DesignPoint dp;
  dp.workItemPipeline = false;  // depth-dominated so IP latencies matter
  const Estimate a = v7.estimate(f.launch, dp);
  const Estimate b = ku.estimate(f.launch, dp);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_LT(b.pe.depth, a.pe.depth);
}

TEST(Bottleneck, MemoryBoundKernelDiagnosed) {
  // Scattered reads, almost no compute: the pipeline starves on DRAM.
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[(i * 977) % 1024] + a[(i * 353) % 1024] + a[(i * 131) % 1024];\n"
      "}\n");
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  const Estimate est = model.estimate(f.launch, dp);
  ASSERT_TRUE(est.ok);
  const BottleneckReport report = diagnose(est, dp);
  EXPECT_EQ(report.primary, Bottleneck::MemoryLatency);
  EXPECT_FALSE(report.hints.empty());
}

TEST(Bottleneck, PipelineDisabledDiagnosed) {
  Fixture f;
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  dp.workItemPipeline = false;
  const Estimate est = model.estimate(f.launch, dp);
  const BottleneckReport report = diagnose(est, dp);
  EXPECT_EQ(report.primary, Bottleneck::PipelineDisabled);
}

// ---------------------------------------------------------------------------
// Analysis cache (DESIGN.md §11): the factorized estimation stages
// ---------------------------------------------------------------------------

TEST(AnalysisCache, CuAndCommModeSweepAnalyzesOnce) {
  Fixture f;
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  dp.peParallelism = 2;
  // The CU count reaches the schedule only through the DSP budget, which the
  // cache key canonicalises; the communication mode never reaches it at all.
  // A CU x mode sweep at fixed wg / P / pipelining is therefore one schedule
  // computation, not six — the tentpole's headline saving.
  for (int cu : {1, 2, 4}) {
    for (CommMode mode : {CommMode::Pipeline, CommMode::Barrier}) {
      dp.numComputeUnits = cu;
      dp.commMode = mode;
      EXPECT_TRUE(model.estimate(f.launch, dp).ok);
    }
  }
  const runtime::CounterSnapshot c = model.analysisCacheCounters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.hits, 5u);
}

TEST(AnalysisCache, DistinctScheduleInputsMiss) {
  Fixture f;
  FlexCl model(Device::virtex7());
  DesignPoint dp;
  EXPECT_TRUE(model.estimate(f.launch, dp).ok);
  dp.workGroupSize = {128, 1, 1};  // wg size changes the trip counts
  EXPECT_TRUE(model.estimate(f.launch, dp).ok);
  dp.innerLoopPipeline = true;  // and loop pipelining changes the schedule
  EXPECT_TRUE(model.estimate(f.launch, dp).ok);
  EXPECT_EQ(model.analysisCacheCounters().misses, 3u);
}

/// Evaluates one workload's (reduced) space with the model and the SDAccel
/// estimator; used to compare cache-on and cache-off runs bit-for-bit.
struct SweptWorkload {
  std::vector<double> modelCycles;
  std::vector<double> sdaccelCycles;  // -1 where the estimator failed
  int bestByModel = -1;
};

SweptWorkload sweep(FlexCl& model, const workloads::CompiledWorkload& cw,
                    const std::vector<DesignPoint>& space) {
  SweptWorkload out;
  const LaunchInfo launch = cw.launch();
  for (const DesignPoint& dp : space) {
    const Estimate est = model.estimate(launch, dp);
    out.modelCycles.push_back(est.ok ? est.cycles : -1.0);
    const cdfg::KernelAnalysis analysis = model.analysisFor(launch, dp);
    const auto sd = sdaccel::estimateSdaccel(
        *launch.fn, analysis, model.device(), dp,
        FlexCl::rangeFor(launch, dp).globalCount());
    out.sdaccelCycles.push_back(sd ? sd->cycles : -1.0);
    if (est.ok &&
        (out.bestByModel < 0 ||
         est.cycles < out.modelCycles[static_cast<std::size_t>(out.bestByModel)])) {
      out.bestByModel = static_cast<int>(out.modelCycles.size()) - 1;
    }
  }
  return out;
}

TEST(AnalysisCache, BitIdenticalAcrossAllBundledWorkloads) {
  // Every bundled kernel (45 Rodinia + 15 PolyBench), cache on vs off: the
  // memoized stages are pure functions of their keys, so estimates, SDAccel
  // estimates, and the design the model picks must match to the last bit.
  // One wg size bounds the interpreter-profiling cost; the simulator is not
  // involved (its path is cache-independent).
  std::vector<workloads::Workload> all = workloads::rodiniaSuite();
  const auto& poly = workloads::polybenchSuite();
  all.insert(all.end(), poly.begin(), poly.end());
  ASSERT_EQ(all.size(), 60u);

  ModelOptions cachedOpts;
  ModelOptions uncachedOpts;
  uncachedOpts.analysisCache = false;

  for (const workloads::Workload& w : all) {
    std::string error;
    auto compiled = workloads::compileWorkload(w, &error);
    ASSERT_TRUE(compiled) << w.fullName() << ": " << error;

    bool hasBarriers = false;
    for (const auto& bb : compiled->fn->blocks()) {
      for (const ir::Instruction* inst : bb->instructions()) {
        if (inst->opcode() == ir::Opcode::Barrier) hasBarriers = true;
      }
    }
    dse::SpaceOptions sopts;
    sopts.workGroupSizes = {64};
    sopts.peParallelism = {1, 4};
    sopts.computeUnits = {1, 2};
    const auto space =
        dse::enumerateDesignSpace(compiled->meta.range, hasBarriers, sopts);
    ASSERT_FALSE(space.empty()) << w.fullName();

    FlexCl cached(Device::virtex7(), cachedOpts);
    FlexCl uncached(Device::virtex7(), uncachedOpts);
    const SweptWorkload a = sweep(cached, *compiled, space);
    const SweptWorkload b = sweep(uncached, *compiled, space);
    ASSERT_EQ(a.modelCycles.size(), b.modelCycles.size()) << w.fullName();
    for (std::size_t i = 0; i < space.size(); ++i) {
      EXPECT_EQ(a.modelCycles[i], b.modelCycles[i])
          << w.fullName() << " " << space[i].str();
      EXPECT_EQ(a.sdaccelCycles[i], b.sdaccelCycles[i])
          << w.fullName() << " " << space[i].str();
    }
    EXPECT_EQ(a.bestByModel, b.bestByModel) << w.fullName();
    EXPECT_GT(cached.analysisCacheCounters().lookups(), 0u) << w.fullName();
    EXPECT_EQ(uncached.analysisCacheCounters().lookups(), 0u)
        << "cache-off instance must not touch the cache";
  }
}

}  // namespace
}  // namespace flexcl::model
