// IR-level tests: type system, printer and verifier behaviour that the
// higher-level suites exercise only indirectly.
#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/printer.h"
#include "ir/type.h"
#include "ir/verifier.h"

namespace flexcl::ir {
namespace {

TEST(TypeSystem, InterningMakesTypesPointerEqual) {
  TypeContext ctx;
  EXPECT_EQ(ctx.i32(), ctx.intType(32, true));
  EXPECT_NE(ctx.i32(), ctx.u32());
  EXPECT_EQ(ctx.pointerType(ctx.f32(), AddressSpace::Global),
            ctx.pointerType(ctx.f32(), AddressSpace::Global));
  EXPECT_NE(ctx.pointerType(ctx.f32(), AddressSpace::Global),
            ctx.pointerType(ctx.f32(), AddressSpace::Local));
  EXPECT_EQ(ctx.vectorType(ctx.f32(), 4), ctx.vectorType(ctx.f32(), 4));
  EXPECT_EQ(ctx.arrayType(ctx.i32(), 8), ctx.arrayType(ctx.i32(), 8));
}

TEST(TypeSystem, SizesArePacked) {
  TypeContext ctx;
  EXPECT_EQ(ctx.i8()->sizeInBytes(), 1u);
  EXPECT_EQ(ctx.i64()->sizeInBytes(), 8u);
  EXPECT_EQ(ctx.vectorType(ctx.f32(), 4)->sizeInBytes(), 16u);
  EXPECT_EQ(ctx.arrayType(ctx.arrayType(ctx.f32(), 17), 16)->sizeInBytes(),
            16u * 17u * 4u);
  const Type* s = ctx.structType(
      "Rec", {{"a", ctx.f32()}, {"b", ctx.i16()}, {"c", ctx.f64()}});
  EXPECT_EQ(s->sizeInBytes(), 4u + 2u + 8u);
  EXPECT_EQ(s->fieldOffset(0), 0u);
  EXPECT_EQ(s->fieldOffset(1), 4u);
  EXPECT_EQ(s->fieldOffset(2), 6u);
  EXPECT_EQ(s->fieldIndex("c"), 2);
  EXPECT_EQ(s->fieldIndex("nope"), -1);
}

TEST(TypeSystem, StructLookupByName) {
  TypeContext ctx;
  const Type* s = ctx.structType("P", {{"x", ctx.f32()}});
  EXPECT_EQ(ctx.findStruct("P"), s);
  EXPECT_EQ(ctx.findStruct("Q"), nullptr);
  // Re-declaring returns the existing type.
  EXPECT_EQ(ctx.structType("P", {}), s);
}

TEST(TypeSystem, TypeStrings) {
  TypeContext ctx;
  EXPECT_EQ(ctx.i32()->str(), "i32");
  EXPECT_EQ(ctx.u16()->str(), "u16");
  EXPECT_EQ(ctx.f64()->str(), "f64");
  EXPECT_EQ(ctx.pointerType(ctx.f32(), AddressSpace::Global)->str(),
            "f32 global*");
  EXPECT_EQ(ctx.vectorType(ctx.i32(), 4)->str(), "i32x4");
  EXPECT_EQ(ctx.arrayType(ctx.f32(), 3)->str(), "[3 x f32]");
}

/// Builds a minimal hand-rolled function for verifier/printer tests.
struct Harness {
  TypeContext ctx;
  Module module{ctx};
  Function* fn = nullptr;
  BasicBlock* entry = nullptr;
  IRBuilder builder;

  Harness() : builder(*(fn = module.createFunction("t", ctx.voidType()))) {
    entry = fn->createBlock("entry");
    builder.setInsertBlock(entry);
  }
};

TEST(Verifier, CleanFunctionPasses) {
  Harness h;
  Argument* a = h.fn->addArgument(
      h.ctx.pointerType(h.ctx.i32(), AddressSpace::Global), "a");
  ir::Value* v = h.builder.load(a, h.ctx.i32());
  h.builder.store(v, a);
  h.builder.ret(nullptr);
  auto root = std::make_unique<Region>();
  root->kind = Region::Kind::Seq;
  h.fn->setRootRegion(std::move(root));
  EXPECT_TRUE(verifyFunction(*h.fn).empty());
}

TEST(Verifier, MissingTerminatorReported) {
  Harness h;
  h.builder.binary(Opcode::Add, h.fn->intConstant(h.ctx.i32(), 1),
                   h.fn->intConstant(h.ctx.i32(), 2), h.ctx.i32());
  const auto problems = verifyFunction(*h.fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(Verifier, ForeignBranchTargetReported) {
  Harness h;
  TypeContext otherCtx;
  Module other(otherCtx);
  Function* foreign = other.createFunction("f", otherCtx.voidType());
  BasicBlock* foreignBlock = foreign->createBlock("far");
  h.builder.br(foreignBlock);
  const auto problems = verifyFunction(*h.fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("foreign"), std::string::npos);
}

TEST(Verifier, LoadFromNonPointerReported) {
  Harness h;
  Instruction* bad = h.fn->createInstruction(Opcode::Load, h.ctx.i32());
  bad->addOperand(h.fn->intConstant(h.ctx.i32(), 0));
  h.entry->append(bad);
  h.builder.ret(nullptr);
  const auto problems = verifyFunction(*h.fn);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("pointer"), std::string::npos);
}

TEST(Printer, RendersOperandsAndTargets) {
  Harness h;
  Argument* a = h.fn->addArgument(
      h.ctx.pointerType(h.ctx.f32(), AddressSpace::Global), "data");
  ir::Value* v = h.builder.load(a, h.ctx.f32());
  ir::Value* doubled = h.builder.binary(Opcode::FMul, v,
                                        h.fn->floatConstant(h.ctx.f32(), 2.0),
                                        h.ctx.f32());
  h.builder.store(doubled, a);
  BasicBlock* next = h.fn->createBlock("next");
  h.builder.br(next);
  h.builder.setInsertBlock(next);
  h.builder.ret(nullptr);

  const std::string text = printFunction(*h.fn);
  EXPECT_NE(text.find("func @t(f32 global* %data)"), std::string::npos);
  EXPECT_NE(text.find("load.global %data"), std::string::npos);
  EXPECT_NE(text.find("fmul"), std::string::npos);
  EXPECT_NE(text.find("br ^next"), std::string::npos);
  EXPECT_NE(text.find("next:"), std::string::npos);
}

TEST(Builder, CastOfSameTypeIsNoOp) {
  Harness h;
  ir::Value* c = h.fn->intConstant(h.ctx.i32(), 5);
  EXPECT_EQ(h.builder.cast(Opcode::SExt, c, h.ctx.i32()), c);
  h.builder.ret(nullptr);
}

TEST(Builder, ConstantsAreInterned) {
  Harness h;
  EXPECT_EQ(h.fn->intConstant(h.ctx.i32(), 42), h.fn->intConstant(h.ctx.i32(), 42));
  EXPECT_NE(h.fn->intConstant(h.ctx.i32(), 42), h.fn->intConstant(h.ctx.i64(), 42));
  EXPECT_EQ(h.fn->floatConstant(h.ctx.f32(), 1.5),
            h.fn->floatConstant(h.ctx.f32(), 1.5));
}

TEST(Builder, TerminatedBlockSwallowsExtraTerminators) {
  Harness h;
  h.builder.ret(nullptr);
  h.builder.ret(nullptr);  // ignored: block already terminated
  EXPECT_EQ(h.entry->instructions().size(), 1u);
}

}  // namespace
}  // namespace flexcl::ir
