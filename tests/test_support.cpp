#include <gtest/gtest.h>

#include "support/diagnostics.h"
#include "support/rng.h"
#include "support/source_manager.h"
#include "support/text_table.h"

namespace flexcl {
namespace {

TEST(SourceManager, LocatesLinesAndColumns) {
  SourceManager sm("abc\ndef\n\nxyz");
  EXPECT_EQ(sm.lineCount(), 4u);

  SourceLocation loc = sm.locate(0);
  EXPECT_EQ(loc.line, 1u);
  EXPECT_EQ(loc.column, 1u);

  loc = sm.locate(4);  // 'd'
  EXPECT_EQ(loc.line, 2u);
  EXPECT_EQ(loc.column, 1u);

  loc = sm.locate(6);  // 'f'
  EXPECT_EQ(loc.line, 2u);
  EXPECT_EQ(loc.column, 3u);

  loc = sm.locate(9);  // 'x' after the empty line
  EXPECT_EQ(loc.line, 4u);
  EXPECT_EQ(loc.column, 1u);
}

TEST(SourceManager, LineExtraction) {
  SourceManager sm("first\nsecond\r\nthird");
  EXPECT_EQ(sm.line(1), "first");
  EXPECT_EQ(sm.line(2), "second");  // \r stripped
  EXPECT_EQ(sm.line(3), "third");
  EXPECT_EQ(sm.line(0), "");
  EXPECT_EQ(sm.line(9), "");
}

TEST(SourceManager, LocateClampsPastEnd) {
  SourceManager sm("ab");
  SourceLocation loc = sm.locate(100);
  EXPECT_EQ(loc.line, 1u);
  EXPECT_EQ(loc.column, 3u);
}

TEST(Diagnostics, CountsErrorsOnly) {
  DiagnosticEngine diags;
  diags.warning(SourceLocation{0, 1, 1}, "w");
  EXPECT_FALSE(diags.hasErrors());
  diags.error(SourceLocation{0, 2, 3}, "e");
  diags.note(SourceLocation{}, "n");
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_EQ(diags.errorCount(), 1u);
  EXPECT_EQ(diags.diagnostics().size(), 3u);
}

TEST(Diagnostics, RendersLocations) {
  DiagnosticEngine diags;
  diags.error(SourceLocation{0, 2, 5}, "boom");
  EXPECT_EQ(diags.str(), "2:5: error: boom\n");
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine diags;
  diags.error(SourceLocation{}, "e");
  diags.clear();
  EXPECT_FALSE(diags.hasErrors());
  EXPECT_TRUE(diags.diagnostics().empty());
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
    const auto v = rng.nextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianRoughlyCentred) {
  Rng rng(99);
  double sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) sum += rng.nextGaussian();
  EXPECT_NEAR(sum / n, 0.0, 0.05);
}

TEST(StableHash, DiffersByContent) {
  const char a[] = "hello";
  const char b[] = "hellp";
  EXPECT_NE(stableHash(a, 5), stableHash(b, 5));
  EXPECT_EQ(stableHash(a, 5), stableHash(a, 5));
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.row().cell("x").cell(std::int64_t{1234});
  t.row().cell("longer-name").cell(3.14159, 2);
  const std::string s = t.str();
  EXPECT_NE(s.find("| name        | value |"), std::string::npos);
  EXPECT_NE(s.find("| x           | 1234  |"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
}

}  // namespace
}  // namespace flexcl
