#include <gtest/gtest.h>

#include "dram/calibrate.h"
#include "dram/dram_sim.h"
#include "dram/pattern.h"

namespace flexcl::dram {
namespace {

interp::MemoryAccessEvent event(std::uint64_t wi, std::int32_t buffer,
                                std::int64_t offset, std::uint32_t size,
                                bool isWrite) {
  interp::MemoryAccessEvent ev;
  ev.workItem = wi;
  ev.buffer = buffer;
  ev.offset = offset;
  ev.size = size;
  ev.isWrite = isWrite;
  return ev;
}

// ---------------------------------------------------------------------------
// Address mapping
// ---------------------------------------------------------------------------

TEST(AddressMap, InterleavesChunksAcrossBanks) {
  DramConfig cfg;
  for (int chunk = 0; chunk < 16; ++chunk) {
    const BankAddress ba =
        mapAddress(cfg, static_cast<std::uint64_t>(chunk) * cfg.interleaveBytes);
    EXPECT_EQ(ba.bank, chunk % cfg.banks);
  }
}

TEST(AddressMap, SameChunkSameBank) {
  DramConfig cfg;
  const BankAddress a = mapAddress(cfg, 0);
  const BankAddress b = mapAddress(cfg, cfg.interleaveBytes - 1);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
}

TEST(AddressMap, RowAdvancesWithinBank) {
  DramConfig cfg;
  // Next address in the same bank: one full sweep of all banks later.
  const std::uint64_t sweep =
      static_cast<std::uint64_t>(cfg.banks) * cfg.interleaveBytes;
  const BankAddress a = mapAddress(cfg, 0);
  // rowBytes / interleaveBytes chunks of this bank fill one row.
  const std::uint64_t chunksPerRow = cfg.rowBytes / cfg.interleaveBytes;
  const BankAddress b = mapAddress(cfg, sweep * chunksPerRow);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(b.row, a.row + 1);
}

TEST(AddressMap, DistinctBuffersAreFarApart) {
  EXPECT_GE(linearAddress(1, 0) - linearAddress(0, 0), kBufferStride);
}

// ---------------------------------------------------------------------------
// Coalescer
// ---------------------------------------------------------------------------

TEST(Coalescer, MergesConsecutiveRun) {
  std::vector<interp::MemoryAccessEvent> trace;
  for (int i = 0; i < 32; ++i) trace.push_back(event(0, 0, i * 4, 4, false));
  DramConfig cfg;
  auto out = coalesce(trace, cfg);
  // 128 bytes @ 64-byte unit -> 2 accesses.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].bytes, 64u);
  EXPECT_EQ(out[1].offset, 64);
}

TEST(Coalescer, PaperExampleFactorSixteen) {
  // 1024 consecutive 32-bit reads with a 512-bit unit -> 64 accesses (§3.4).
  std::vector<interp::MemoryAccessEvent> trace;
  for (int i = 0; i < 1024; ++i) trace.push_back(event(0, 0, i * 4, 4, false));
  DramConfig cfg;
  EXPECT_EQ(coalesce(trace, cfg).size(), 64u);
  EXPECT_DOUBLE_EQ(coalescingFactor(cfg, 4), 16.0);
}

TEST(Coalescer, DirectionChangeBreaksRun) {
  std::vector<interp::MemoryAccessEvent> trace = {
      event(0, 0, 0, 4, false), event(0, 0, 4, 4, true), event(0, 0, 8, 4, false)};
  EXPECT_EQ(coalesce(trace, DramConfig{}).size(), 3u);
}

TEST(Coalescer, BufferChangeBreaksRun) {
  std::vector<interp::MemoryAccessEvent> trace = {
      event(0, 0, 0, 4, false), event(0, 1, 4, 4, false)};
  EXPECT_EQ(coalesce(trace, DramConfig{}).size(), 2u);
}

TEST(Coalescer, GapBreaksRun) {
  std::vector<interp::MemoryAccessEvent> trace = {
      event(0, 0, 0, 4, false), event(0, 0, 16, 4, false)};
  EXPECT_EQ(coalesce(trace, DramConfig{}).size(), 2u);
}

TEST(Coalescer, WorkItemBoundaryBreaksRun) {
  // Bursts are inferred within one work-item's datapath only.
  std::vector<interp::MemoryAccessEvent> trace = {
      event(0, 0, 0, 4, false), event(1, 0, 4, 4, false)};
  EXPECT_EQ(coalesce(trace, DramConfig{}).size(), 2u);
}

// ---------------------------------------------------------------------------
// Pattern classification
// ---------------------------------------------------------------------------

TEST(Patterns, HitAfterSameRowAccess) {
  DramConfig cfg;
  std::vector<CoalescedAccess> stream;
  CoalescedAccess a;
  a.buffer = 0;
  a.offset = 0;
  a.bytes = 64;
  a.isWrite = false;
  stream.push_back(a);  // first access: miss
  stream.push_back(a);  // same row: RAR hit
  PatternCounts counts = classifyStream(stream, cfg);
  EXPECT_DOUBLE_EQ(counts[AccessPattern::RarMiss], 1.0);
  EXPECT_DOUBLE_EQ(counts[AccessPattern::RarHit], 1.0);
}

TEST(Patterns, AllEightPatternsReachable) {
  DramConfig cfg;
  const std::int64_t rowJump =
      static_cast<std::int64_t>(cfg.rowBytes) * cfg.banks * 4;
  std::vector<CoalescedAccess> stream;
  auto push = [&](std::int64_t offset, bool isWrite) {
    CoalescedAccess a;
    a.buffer = 0;
    a.offset = offset;
    a.bytes = 64;
    a.isWrite = isWrite;
    stream.push_back(a);
  };
  // Sequence engineered on one bank: miss R, hit R (RARhit), hit W (WARhit),
  // hit W (WAWhit), hit R (RAWhit), miss R (RARmiss via row jump)...
  push(0, false);            // RAR miss (cold)
  push(0, false);            // RAR hit
  push(0, true);             // WAR hit
  push(0, true);             // WAW hit
  push(0, false);            // RAW hit
  push(rowJump, false);      // RAR miss
  push(2 * rowJump, true);   // WAR miss
  push(3 * rowJump, true);   // WAW miss? previous was write -> row jump write
  push(4 * rowJump, false);  // RAW miss
  PatternCounts counts = classifyStream(stream, cfg);
  EXPECT_GT(counts[AccessPattern::RarHit], 0);
  EXPECT_GT(counts[AccessPattern::WarHit], 0);
  EXPECT_GT(counts[AccessPattern::WawHit], 0);
  EXPECT_GT(counts[AccessPattern::RawHit], 0);
  EXPECT_GT(counts[AccessPattern::RarMiss], 0);
  EXPECT_GT(counts[AccessPattern::WarMiss], 0);
  EXPECT_GT(counts[AccessPattern::WawMiss], 0);
  EXPECT_GT(counts[AccessPattern::RawMiss], 0);
  EXPECT_DOUBLE_EQ(counts.total(), static_cast<double>(stream.size()));
}

TEST(Patterns, OccupancyAccounting) {
  DramConfig cfg;
  std::vector<CoalescedAccess> stream;
  CoalescedAccess a;
  a.buffer = 0;
  a.offset = 0;
  a.bytes = 64;
  a.isWrite = true;
  stream.push_back(a);
  StreamAnalysis analysis = analyzeStream(stream, cfg);
  // Cold write: tCcd + tRcd (no precharge: row closed) + tWr.
  EXPECT_DOUBLE_EQ(analysis.bankOccupancy[static_cast<std::size_t>(
                       mapAddress(cfg, linearAddress(0, 0)).bank)],
                   cfg.tCcd + cfg.tRcd + cfg.tWr);
  EXPECT_DOUBLE_EQ(analysis.busOccupancy, cfg.transferCycles);
}

// ---------------------------------------------------------------------------
// DRAM simulator
// ---------------------------------------------------------------------------

TEST(DramSim, RowHitFasterThanMiss) {
  DramConfig cfg;
  cfg.refreshInterval = 0;  // disable refresh for determinism here
  DramSim sim(cfg);
  const std::uint64_t t1 = sim.access(0, 0, false);            // cold miss
  const std::uint64_t hitDone = sim.access(t1, 0, false);      // row hit
  const std::uint64_t hitLat = hitDone - t1;
  const std::uint64_t missDone = sim.access(
      hitDone, static_cast<std::uint64_t>(cfg.rowBytes) * cfg.banks * 8, false);
  const std::uint64_t missLat = missDone - hitDone;
  EXPECT_LT(hitLat, missLat);
  EXPECT_EQ(sim.rowHits(), 1u);
  EXPECT_EQ(sim.totalAccesses(), 3u);
}

TEST(DramSim, BankConflictQueues) {
  DramConfig cfg;
  cfg.refreshInterval = 0;
  DramSim sim(cfg);
  // Two simultaneous write requests to the same bank, different rows: the
  // second must wait for the first's precharge/activate.
  const std::uint64_t rowJump =
      static_cast<std::uint64_t>(cfg.rowBytes) * cfg.banks * 2;
  const std::uint64_t d1 = sim.access(0, 0, true);
  sim.reset();
  const std::uint64_t a1 = sim.access(0, 0, true);
  const std::uint64_t a2 = sim.access(0, rowJump, true);
  EXPECT_EQ(a1, d1);
  EXPECT_GT(a2, a1);
}

TEST(DramSim, DifferentBanksOverlap) {
  DramConfig cfg;
  cfg.refreshInterval = 0;
  DramSim sim(cfg);
  const std::uint64_t sameBank0 = sim.access(0, 0, false);
  sim.reset();
  sim.access(0, 0, false);
  // Same cycle, different bank: only bus transfer serialises.
  const std::uint64_t otherBank = sim.access(0, cfg.interleaveBytes, false);
  EXPECT_LE(otherBank, sameBank0 + cfg.transferCycles);
}

TEST(DramSim, RefreshStallsAccesses) {
  DramConfig cfg;
  DramSim sim(cfg);
  // An access issued inside the refresh window waits for it to finish.
  const std::uint64_t done = sim.access(1, 0, false);
  EXPECT_GE(done, static_cast<std::uint64_t>(cfg.refreshDuration));
}

TEST(DramSim, MonotonicCompletion) {
  DramConfig cfg;
  DramSim sim(cfg);
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t done =
        sim.access(last, static_cast<std::uint64_t>(i) * 64, i % 3 == 0);
    EXPECT_GT(done, last);
    last = done;
  }
  EXPECT_EQ(sim.totalAccesses(), 100u);
  EXPECT_GT(sim.avgLatency(), 0.0);
}

// ---------------------------------------------------------------------------
// Calibration
// ---------------------------------------------------------------------------

TEST(Calibrate, MissesSlowerThanHits) {
  PatternLatencyTable t = calibratePatternLatencies(DramConfig{});
  for (int p = 0; p < 4; ++p) {
    EXPECT_LT(t.latency[static_cast<std::size_t>(p)],
              t.latency[static_cast<std::size_t>(p + 4)])
        << patternName(static_cast<AccessPattern>(p));
  }
}

TEST(Calibrate, ReadAfterWriteSlowestHitPattern) {
  // Write->read turnaround is the largest direction penalty.
  PatternLatencyTable t = calibratePatternLatencies(DramConfig{});
  EXPECT_GT(t[AccessPattern::RawHit], t[AccessPattern::RarHit]);
  EXPECT_GT(t[AccessPattern::RawMiss], t[AccessPattern::RarMiss]);
}

TEST(Calibrate, AllLatenciesPositiveAndBounded) {
  PatternLatencyTable t = calibratePatternLatencies(DramConfig{});
  for (double l : t.latency) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 100.0);
  }
}

TEST(Calibrate, Deterministic) {
  PatternLatencyTable a = calibratePatternLatencies(DramConfig{});
  PatternLatencyTable b = calibratePatternLatencies(DramConfig{});
  for (int p = 0; p < kPatternCount; ++p) {
    EXPECT_DOUBLE_EQ(a.latency[static_cast<std::size_t>(p)],
                     b.latency[static_cast<std::size_t>(p)]);
  }
}

}  // namespace
}  // namespace flexcl::dram
