// Dataflow framework tests: interval transfer-function edge cases (overflow,
// mixed signedness, zero-containing divisors), affine linearization and range
// evaluation, the GCD/Banerjee dependence tester, the value-range engine, the
// static trip-count tier, and the suite-wide soundness properties (static
// trips match the profiler; static RecMII never undercuts the profiled one).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <iostream>

#include "analysis/analyze.h"
#include "analysis/dataflow/dependence.h"
#include "analysis/dataflow/engine.h"
#include "analysis/dataflow/trip_count.h"
#include "cdfg/cdfg.h"
#include "dse/explorer.h"
#include "interp/profiler.h"
#include "ir/lower.h"
#include "model/pe_model.h"
#include "sched/mii.h"
#include "workloads/workload.h"

namespace flexcl::analysis::dataflow {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

const ir::Function* fnOf(const ir::CompiledProgram& p, const std::string& name) {
  const ir::Function* fn = p.module->findFunction(name);
  EXPECT_NE(fn, nullptr);
  return fn;
}

// ---------------------------------------------------------------------------
// Interval domain: overflow, signedness and zero-divisor edge cases
// ---------------------------------------------------------------------------

TEST(IntervalDomain, Int64OverflowDegradesToTopNotWrap) {
  // Any transfer whose concrete result could exceed int64 must answer top:
  // wrapping would under-approximate the value set.
  EXPECT_TRUE(addI(Interval::point(INT64_MAX), Interval::point(1)).isTop());
  EXPECT_TRUE(subI(Interval::point(INT64_MIN), Interval::point(1)).isTop());
  EXPECT_TRUE(negI(Interval::point(INT64_MIN)).isTop());
  EXPECT_TRUE(mulI(Interval::point(std::int64_t{1} << 40),
                   Interval::point(std::int64_t{1} << 40))
                  .isTop());
  // One overflowing bound poisons the whole interval, not just that bound.
  EXPECT_TRUE(addI(Interval::range(0, INT64_MAX), Interval::range(0, 1)).isTop());
  // In-range arithmetic stays exact.
  EXPECT_EQ(addI(Interval::point(INT64_MAX - 1), Interval::point(1)),
            Interval::point(INT64_MAX));
  EXPECT_EQ(negI(Interval::range(-3, 5)), Interval::range(-5, 3));
}

TEST(IntervalDomain, MixedSignMultiplicationTakesCrossExtremes) {
  // [-3,2] * [4,5]: extreme products are -15 (=-3*5) and 10 (=2*5).
  EXPECT_EQ(mulI(Interval::range(-3, 2), Interval::range(4, 5)),
            Interval::range(-15, 10));
  // Both operands straddle zero: the corner products of [-2,3] * [-5,7] are
  // {10, -14, -15, 21}.
  EXPECT_EQ(mulI(Interval::range(-2, 3), Interval::range(-5, 7)),
            Interval::range(-15, 21));
}

TEST(IntervalDomain, DivisionTruncatesTowardZeroAndIsSound) {
  EXPECT_EQ(divI(Interval::range(-7, 7), Interval::point(2)),
            Interval::range(-3, 3));
  EXPECT_EQ(divI(Interval::point(-9), Interval::point(2)), Interval::point(-4));
  // Exhaustive soundness over a small grid with a negative divisor range.
  const Interval num = Interval::range(-6, 6);
  const Interval den = Interval::range(-3, -1);
  const Interval out = divI(num, den);
  for (std::int64_t a = num.lo; a <= num.hi; ++a) {
    for (std::int64_t b = den.lo; b <= den.hi; ++b) {
      EXPECT_TRUE(out.contains(a / b)) << a << "/" << b;
    }
  }
}

TEST(IntervalDomain, ZeroContainingDivisorExcludesZeroOnly) {
  // Division by zero has no defined result to bound; the divisor [-2,2]
  // contributes only {-2,-1,1,2}. All defined quotients must be covered.
  const Interval out = divI(Interval::range(10, 20), Interval::range(-2, 2));
  EXPECT_FALSE(out.isTop());
  for (std::int64_t b : {-2, -1, 1, 2}) {
    for (std::int64_t a = 10; a <= 20; ++a) {
      EXPECT_TRUE(out.contains(a / b)) << a << "/" << b;
    }
  }
  // A divisor of exactly zero leaves nothing defined: top.
  EXPECT_TRUE(divI(Interval::range(10, 20), Interval::point(0)).isTop());
  EXPECT_TRUE(remI(Interval::range(10, 20), Interval::point(0)).isTop());
}

TEST(IntervalDomain, RemainderFollowsCSignRules) {
  EXPECT_EQ(remI(Interval::point(17), Interval::point(5)), Interval::point(2));
  // C99 %: the result takes the dividend's sign. Exhaustive soundness with
  // mixed signs and a zero-containing divisor range.
  const Interval num = Interval::range(-7, 7);
  const Interval den = Interval::range(-3, 3);
  const Interval out = remI(num, den);
  for (std::int64_t a = num.lo; a <= num.hi; ++a) {
    for (std::int64_t b = den.lo; b <= den.hi; ++b) {
      if (b == 0) continue;
      EXPECT_TRUE(out.contains(a % b)) << a << "%" << b;
    }
  }
}

TEST(IntervalDomain, JoinWidenMeetLattice) {
  EXPECT_EQ(join(Interval::range(0, 3), Interval::range(10, 12)),
            Interval::range(0, 12));
  // Widening jumps grown bounds to infinity so loops converge.
  const Interval w = widen(Interval::range(0, 4), Interval::range(0, 5));
  EXPECT_EQ(w.lo, 0);
  EXPECT_EQ(w.hi, Interval::kMax);
  EXPECT_EQ(widen(Interval::range(0, 4), Interval::range(0, 4)),
            Interval::range(0, 4));
  // Meet with an empty intersection must not manufacture bottom.
  EXPECT_EQ(meet(Interval::range(0, 3), Interval::range(10, 12)),
            Interval::range(0, 3));
  EXPECT_EQ(meet(Interval::range(0, 10), Interval::range(5, 20)),
            Interval::range(5, 10));
}

TEST(IntervalDomain, CompareAndBranchRefinement) {
  EXPECT_EQ(cmpI(ir::CmpPred::Lt, Interval::range(0, 3), Interval::point(5)),
            Interval::point(1));  // proven true
  EXPECT_EQ(cmpI(ir::CmpPred::Lt, Interval::range(6, 9), Interval::point(5)),
            Interval::point(0));  // proven false
  EXPECT_EQ(cmpI(ir::CmpPred::Lt, Interval::range(0, 9), Interval::point(5)),
            Interval::range(0, 1));  // undecided
  // assume(x < 10) on top clamps the upper bound.
  const Interval r = assumeCmp(ir::CmpPred::Lt, Interval::top(),
                               Interval::point(10));
  EXPECT_EQ(r.hi, 9);
  EXPECT_EQ(assumeCmp(ir::CmpPred::Ge, Interval::top(), Interval::point(0)).lo,
            0);
}

TEST(KnownBitsDomain, MaskRefinementAndNormalization) {
  const KnownBits c12 = bitsOfConstant(12);
  EXPECT_EQ(c12.ones, 12u);
  EXPECT_EQ(c12.zeros, ~std::uint64_t{12});
  // x & 7 proves every bit above bit 2 zero even for unknown x.
  const KnownBits masked = andBits(KnownBits{}, bitsOfConstant(7));
  EXPECT_EQ(masked.zeros & ~std::uint64_t{7}, ~std::uint64_t{7});
  // Non-negative range below 2^k proves the bits at and above k zero...
  AbstractInt a;
  a.range = Interval::range(0, 7);
  EXPECT_NE(a.normalized().bits.zeros & (std::uint64_t{1} << 3), 0u);
  // ...and known zero bits tighten a top range.
  AbstractInt b;
  b.bits = andBits(KnownBits{}, bitsOfConstant(255));
  const AbstractInt nb = b.normalized();
  EXPECT_GE(nb.range.lo, 0);
  EXPECT_LE(nb.range.hi, 255);
}

// ---------------------------------------------------------------------------
// Affine linearization and range evaluation
// ---------------------------------------------------------------------------

TEST(AffineDomain, GlobalIdOffsetLinearizesAndRangesTightly) {
  auto p = compile(
      "__kernel void vadd(__global const float* a, __global float* c) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i];\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "vadd"));
  ASSERT_EQ(summary.accesses.size(), 2u);
  for (const auto& access : summary.accesses) {
    const auto form = linearize(access.offset.get());
    ASSERT_TRUE(form.has_value());
    EXPECT_EQ(form->coeffOf(LeafKey{Sym::GlobalId, 0}), 4);  // float stride
    EXPECT_EQ(form->constant, 0);

    interp::NdRange range;
    range.global = {256, 1, 1};
    range.local = {64, 1, 1};
    const Interval iv = rangeOf(*form, LeafRanges::fromRange(range));
    EXPECT_EQ(iv, Interval::range(0, 255 * 4));
  }
}

TEST(AffineDomain, PartialBindingFoldsScalarArgIntoCoefficients) {
  // row * width + c is only affine once `width` is a known constant: the
  // partial binding folds the bound scalar argument into the coefficients.
  auto p = compile(
      "__kernel void rowsum(__global const float* a, __global float* out,\n"
      "                     int width) {\n"
      "  int row = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int c = 0; c < width; ++c) s += a[row * width + c];\n"
      "  out[row] = s;\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "rowsum"));
  const MemAccessInfo* load = nullptr;
  for (const auto& access : summary.accesses) {
    if (!access.isWrite) load = &access;
  }
  ASSERT_NE(load, nullptr);
  EXPECT_FALSE(linearize(load->offset.get()).has_value());

  SymBinding bind;
  bind.scalarArgs[2] = 16;  // width
  const auto form = linearize(load->offset.get(), &bind);
  ASSERT_TRUE(form.has_value());
  EXPECT_EQ(form->coeffOf(LeafKey{Sym::GlobalId, 0}), 16 * 4);
  EXPECT_TRUE(form->mentions(Sym::LoopIter));
}

TEST(AffineDomain, RangeOfSymIsSoundOnNonAffineTrees) {
  auto p = compile(
      "__kernel void gather(__global const int* idx, __global float* out) {\n"
      "  out[idx[get_global_id(0)]] = 1.0f;\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "gather"));
  const MemAccessInfo* store = nullptr;
  for (const auto& access : summary.accesses) {
    if (access.isWrite) store = &access;
  }
  ASSERT_NE(store, nullptr);
  // Data-dependent offset: not linearizable, and its sound range is top.
  EXPECT_FALSE(linearize(store->offset.get()).has_value());
  interp::NdRange range;
  range.global = {64, 1, 1};
  range.local = {32, 1, 1};
  EXPECT_TRUE(rangeOfSym(store->offset.get(), LeafRanges::fromRange(range))
                  .isTop());
}

// ---------------------------------------------------------------------------
// Linearization property fuzz: negative strides, near-overflow extents,
// wrap-guard (masked/modular offset) interaction
// ---------------------------------------------------------------------------

// Randomized affine trees (negative strides included, randomized association
// order): linearize must represent the expression exactly — the form
// evaluated at a random binding equals symEval of the original tree.
TEST(AffineProperty, RandomAffineTreesLinearizeExactly) {
  Rng rng(0x5eedaff1);
  const LeafKey leafPool[] = {{Sym::GlobalId, 0}, {Sym::LocalId, 1},
                              {Sym::GroupId, 2},  {Sym::ScalarArg, 0},
                              {Sym::LoopIter, 3}};
  for (int iter = 0; iter < 300; ++iter) {
    const std::int64_t c0 = rng.nextInRange(-1000, 1000);
    SymExprPtr expr = symConst(c0);
    std::int64_t expectCoeff[5] = {0, 0, 0, 0, 0};
    const int nTerms = static_cast<int>(rng.nextBelow(5)) + 1;
    for (int t = 0; t < nTerms; ++t) {
      const int which = static_cast<int>(rng.nextBelow(5));
      std::int64_t coeff = rng.nextInRange(-1000, 1000);
      SymExprPtr term =
          symBinary(SymExpr::Op::Mul, symConst(coeff),
                    symLeaf(leafPool[which].sym, leafPool[which].index));
      if (rng.nextBelow(2) == 0) {
        expr = symBinary(SymExpr::Op::Add, std::move(expr), std::move(term));
      } else {
        expr = symBinary(SymExpr::Op::Sub, std::move(expr), std::move(term));
        coeff = -coeff;
      }
      expectCoeff[which] += coeff;  // duplicates must accumulate
    }
    const auto form = linearize(expr.get());
    ASSERT_TRUE(form.has_value()) << "iteration " << iter;
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(form->coeffOf(leafPool[i]), expectCoeff[i])
          << "iteration " << iter << " leaf " << i;
    }

    SymBinding bind;
    bind.globalId[0] = rng.nextInRange(-1000, 1000);
    bind.localId[1] = rng.nextInRange(-1000, 1000);
    bind.groupId[2] = rng.nextInRange(-1000, 1000);
    bind.scalarArgs[0] = rng.nextInRange(-1000, 1000);
    bind.loopIters[3] = rng.nextInRange(-1000, 1000);
    const auto direct = symEval(expr.get(), bind);
    ASSERT_TRUE(direct.has_value()) << "iteration " << iter;
    const std::int64_t viaForm =
        form->constant + form->coeffOf(leafPool[0]) * bind.globalId[0] +
        form->coeffOf(leafPool[1]) * bind.localId[1] +
        form->coeffOf(leafPool[2]) * bind.groupId[2] +
        form->coeffOf(leafPool[3]) * bind.scalarArgs[0] +
        form->coeffOf(leafPool[4]) * bind.loopIters[3];
    EXPECT_EQ(viaForm, *direct) << "iteration " << iter;
  }
}

// Negative strides: the per-term extremes of rangeOf must stay tight (the
// brute-force min/max over the leaf's whole range), not just sound.
TEST(AffineProperty, NegativeStrideRangesAreTight) {
  Rng rng(0xdecaf);
  for (int iter = 0; iter < 100; ++iter) {
    const std::int64_t coeff =
        rng.nextInRange(-64, 64) * (rng.nextBelow(2) ? 1 : -1);
    const std::int64_t c0 = rng.nextInRange(-500, 500);
    const std::int64_t hi = rng.nextInRange(0, 63);
    AffineForm f;
    if (coeff != 0) f.terms.push_back({LeafKey{Sym::GlobalId, 0}, coeff});
    f.constant = c0;
    LeafRanges ranges;
    ranges.set(Sym::GlobalId, 0, Interval::range(0, hi));
    const Interval iv = rangeOf(f, ranges);
    std::int64_t lo = INT64_MAX;
    std::int64_t up = INT64_MIN;
    for (std::int64_t v = 0; v <= hi; ++v) {
      lo = std::min(lo, c0 + coeff * v);
      up = std::max(up, c0 + coeff * v);
    }
    EXPECT_EQ(iv, Interval::range(lo, up))
        << "coeff " << coeff << " c0 " << c0 << " hi " << hi;
  }
}

// Near-overflow extents: coefficient arithmetic must decline (nullopt) or
// degrade to top rather than wrap.
TEST(AffineProperty, NearOverflowDeclinesInsteadOfWrapping) {
  const std::int64_t huge = INT64_MAX / 2 + 1;
  // Coefficient accumulation overflow: huge·x + huge·x has coefficient 2·huge
  // which exceeds int64 — linearize must answer nullopt.
  SymExprPtr doubled = symBinary(
      SymExpr::Op::Add,
      symBinary(SymExpr::Op::Mul, symConst(huge), symLeaf(Sym::GlobalId, 0)),
      symBinary(SymExpr::Op::Mul, symConst(huge), symLeaf(Sym::GlobalId, 0)));
  EXPECT_FALSE(linearize(doubled.get()).has_value());

  // Constant-fold overflow on the constant term.
  SymExprPtr bigConst = symBinary(SymExpr::Op::Add, symConst(INT64_MAX),
                                  symConst(1));
  EXPECT_FALSE(linearize(bigConst.get()).has_value());

  // scaleForm coefficient overflow.
  AffineForm f;
  f.terms.push_back({LeafKey{Sym::GlobalId, 0}, huge});
  EXPECT_FALSE(scaleForm(f, 2).has_value());
  ASSERT_TRUE(scaleForm(f, 1).has_value());

  // A representable form whose product with its leaf range overflows must
  // evaluate to top (sound), never a wrapped finite interval.
  LeafRanges ranges;
  ranges.set(Sym::GlobalId, 0, Interval::range(0, 1024));
  EXPECT_TRUE(rangeOf(f, ranges).isTop());
}

// Wrap-guard interaction: power-of-two masked offsets (i & (N-1)) and
// modular offsets (i % N) are NOT affine — linearize must decline, and
// rangeOfSym must still contain every concrete evaluation (sampled).
TEST(AffineProperty, WrapGuardedOffsetsDeclineButRangeSoundly) {
  Rng rng(0xbadcafe);
  SymExprPtr masked = symBinary(
      SymExpr::Op::And,
      symBinary(SymExpr::Op::Add, symLeaf(Sym::GlobalId, 0),
                symLeaf(Sym::ScalarArg, 0)),
      symConst(127));
  SymExprPtr modular =
      symBinary(SymExpr::Op::Rem, symLeaf(Sym::GlobalId, 0), symConst(100));
  EXPECT_FALSE(linearize(masked.get()).has_value());
  EXPECT_FALSE(linearize(modular.get()).has_value());

  LeafRanges ranges;
  ranges.set(Sym::GlobalId, 0, Interval::range(0, 4095));
  ranges.set(Sym::ScalarArg, 0, Interval::range(0, 63));
  const Interval maskedRange = rangeOfSym(masked.get(), ranges);
  const Interval modularRange = rangeOfSym(modular.get(), ranges);
  for (int iter = 0; iter < 200; ++iter) {
    SymBinding bind;
    bind.globalId[0] = rng.nextInRange(0, 4095);
    bind.scalarArgs[0] = rng.nextInRange(0, 63);
    const auto mv = symEval(masked.get(), bind);
    ASSERT_TRUE(mv.has_value());
    EXPECT_TRUE(maskedRange.contains(*mv)) << *mv;
    const auto rv = symEval(modular.get(), bind);
    ASSERT_TRUE(rv.has_value());
    EXPECT_TRUE(modularRange.contains(*rv)) << *rv;
  }
}

// ---------------------------------------------------------------------------
// Dependence tester
// ---------------------------------------------------------------------------

AffineForm formOf(Sym sym, int index, std::int64_t coeff, std::int64_t c0) {
  AffineForm f;
  if (coeff != 0) f.terms.push_back({LeafKey{sym, index}, coeff});
  f.constant = c0;
  return f;
}

LeafRanges localRanges1d(std::int64_t localSize) {
  LeafRanges r;
  r.set(Sym::LocalId, 0, Interval::range(0, localSize - 1));
  r.set(Sym::LocalId, 1, Interval::point(0));
  r.set(Sym::LocalId, 2, Interval::point(0));
  r.set(Sym::LocalSize, 0, Interval::point(localSize));
  return r;
}

TEST(DependenceTester, NeighbourReadIsDistanceOne) {
  // B[tid] stored, B[tid-1] loaded: work-item t+1 reads work-item t's cell.
  const AccessForm store{formOf(Sym::LocalId, 0, 4, 0), 4};
  const AccessForm load{formOf(Sym::LocalId, 0, 4, -4), 4};
  const DepResult dep = testCrossWorkItem(store, load, localRanges1d(64), 63);
  EXPECT_EQ(dep.kind, DepKind::Distance);
  EXPECT_EQ(dep.distance, 1);
}

TEST(DependenceTester, GcdProvesStridedAccessesIndependent) {
  // B[2*tid] vs B[2*tid+1]: offsets differ by 4 mod 8 for every distance, so
  // no pair of work-items ever touches the same cell.
  const AccessForm store{formOf(Sym::LocalId, 0, 8, 0), 4};
  const AccessForm load{formOf(Sym::LocalId, 0, 8, 4), 4};
  EXPECT_EQ(testCrossWorkItem(store, load, localRanges1d(64), 63).kind,
            DepKind::Independent);
}

TEST(DependenceTester, DisjointBoundsProveIndependence) {
  // B[tid] vs B[tid + 4096]: the byte windows can never overlap within one
  // work-group (Banerjee-style bounds check).
  const AccessForm store{formOf(Sym::LocalId, 0, 4, 0), 4};
  const AccessForm load{formOf(Sym::LocalId, 0, 4, 4096), 4};
  EXPECT_EQ(testCrossWorkItem(store, load, localRanges1d(64), 63).kind,
            DepKind::Independent);
}

TEST(DependenceTester, TwoDimensionalWorkGroupsAreUnknown) {
  // The cross-work-item axis is only sound for effectively 1-D groups.
  LeafRanges ranges = localRanges1d(8);
  ranges.set(Sym::LocalId, 1, Interval::range(0, 7));
  const AccessForm store{formOf(Sym::LocalId, 0, 4, 0), 4};
  const AccessForm load{formOf(Sym::LocalId, 0, 4, -4), 4};
  EXPECT_EQ(testCrossWorkItem(store, load, ranges, 7).kind, DepKind::Unknown);
}

TEST(DependenceTester, LoopCarriedDistanceAndIndependence) {
  const int loopId = 0;
  LeafRanges ranges;
  ranges.set(Sym::LoopIter, loopId, Interval::range(0, 31));
  // acc[i] written, acc[i-2] read two iterations later.
  const AccessForm src{formOf(Sym::LoopIter, loopId, 4, 0), 4};
  const AccessForm dst{formOf(Sym::LoopIter, loopId, 4, -8), 4};
  const DepResult dep = testLoopCarried(src, dst, loopId, ranges, 31);
  EXPECT_EQ(dep.kind, DepKind::Distance);
  EXPECT_EQ(dep.distance, 2);
  // The same subscript in both instances never conflicts across iterations.
  EXPECT_EQ(testLoopCarried(src, src, loopId, ranges, 31).kind,
            DepKind::Independent);
}

// ---------------------------------------------------------------------------
// Value-range engine
// ---------------------------------------------------------------------------

TEST(ValueRangeEngine, SeedsWorkItemQueriesFromGeometry) {
  auto p = compile(
      "__kernel void k(__global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  int lid = get_local_id(0);\n"
      "  out[gid] = (float)(gid + lid);\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  interp::NdRange range;
  range.global = {256, 1, 1};
  range.local = {64, 1, 1};
  const ValueRangeResult result =
      analyzeRanges(*fn, LeafRanges::fromRange(range));
  ASSERT_EQ(result.values.size(), fn->instructionCount());

  bool sawGlobal = false, sawLocal = false;
  for (const auto& bb : fn->blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() != ir::Opcode::WorkItemId) continue;
      if (inst->wiQuery == ir::WiQuery::GlobalId) {
        EXPECT_EQ(result.rangeOf(*inst), Interval::range(0, 255));
        sawGlobal = true;
      } else if (inst->wiQuery == ir::WiQuery::LocalId) {
        EXPECT_EQ(result.rangeOf(*inst), Interval::range(0, 63));
        sawLocal = true;
      }
    }
  }
  EXPECT_TRUE(sawGlobal);
  EXPECT_TRUE(sawLocal);
}

// ---------------------------------------------------------------------------
// Static trip-count tier
// ---------------------------------------------------------------------------

std::vector<std::int64_t> staticTripsOf(const ir::Function& fn,
                                        const SymBinding& bind,
                                        const TripCountConfig& config = {}) {
  return resolveStaticTrips(summarizeKernel(fn), bind, config);
}

TEST(StaticTrips, ScalarArgBoundResolvesRuntimeBound) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) s += a[i];\n"
      "  out[get_global_id(0)] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  ASSERT_EQ(fn->loopCount, 1);

  SymBinding bind;
  bind.scalarArgs[2] = 37;
  const auto trips = staticTripsOf(*fn, bind);
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0], 37);

  // Unbound scalar: the tier must decline, not guess.
  EXPECT_EQ(staticTripsOf(*fn, SymBinding{})[0], -1);
}

TEST(StaticTrips, LocalSizeBoundIsLaunchUniform) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < (int)get_local_size(0); ++i) s += a[i];\n"
      "  out[get_global_id(0)] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  ASSERT_EQ(fn->loopCount, 1);
  SymBinding bind;
  bind.localSize = {64, 1, 1};
  EXPECT_EQ(staticTripsOf(*fn, bind)[0], 64);
}

TEST(StaticTrips, IdDependentLoopsAreNeverResolved) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < gid; ++i) s += a[i];\n"
      "  out[gid] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  ASSERT_EQ(fn->loopCount, 1);
  SymBinding bind;
  bind.globalSize = {256, 1, 1};
  bind.localSize = {64, 1, 1};
  EXPECT_EQ(staticTripsOf(*fn, bind)[0], -1);  // per-work-item trip count
}

TEST(StaticTrips, MaxStaticTripsCapsTheScan) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) s += a[i];\n"
      "  out[get_global_id(0)] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  SymBinding bind;
  bind.scalarArgs[2] = 1 << 20;
  TripCountConfig config;
  config.maxStaticTrips = 1 << 10;
  EXPECT_EQ(staticTripsOf(*fn, bind, config)[0], -1);  // beyond the cap
}

// ---------------------------------------------------------------------------
// Suite-wide properties: the tiers against the profiler
// ---------------------------------------------------------------------------

interp::NdRange workloadRange(const workloads::Workload& w) {
  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 4, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }
  return range;
}

SymBinding launchBinding(const interp::NdRange& range,
                         const std::vector<interp::KernelArg>& args) {
  SymBinding bind;
  const auto groups = range.groupsPerDim();
  for (std::size_t d = 0; d < 3; ++d) {
    bind.globalSize[d] = static_cast<std::int64_t>(range.global[d]);
    bind.localSize[d] = static_cast<std::int64_t>(range.local[d]);
    bind.numGroups[d] = static_cast<std::int64_t>(groups[d]);
  }
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].isBuffer || args[i].scalar.kind != interp::RtValue::Kind::Int)
      continue;
    bind.scalarArgs[static_cast<int>(i)] = args[i].scalar.i;
  }
  return bind;
}

// Every loop the static tiers (induction + dataflow) resolve must match the
// interpreter's profiled trip count exactly, across the whole bundled corpus.
// Note the bundled kernels bake their problem sizes in as compile-time
// defines, so their non-induction loops are genuinely data-dependent (opaque
// or triangular conditions) — the dataflow tier must decline those, never
// fabricate a count; the launch-parametric idiom it targets is covered by
// the test below.
TEST(DataflowProperty, StaticTripsMatchProfilerAcrossAllWorkloads) {
  std::size_t compared = 0;
  std::size_t declined = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled);
      const ir::Function& fn = *compiled->fn;
      if (fn.loopCount == 0) continue;
      const interp::NdRange range = workloadRange(w);
      const auto profile = interp::profileKernel(fn, range, compiled->args,
                                                 compiled->buffers);
      ASSERT_TRUE(profile.ok) << w.fullName() << ": " << profile.error;

      const auto staticTrips = resolveStaticTrips(
          summarizeKernel(fn), launchBinding(range, compiled->args), {});
      ASSERT_EQ(staticTrips.size(), profile.loopTripCounts.size())
          << w.fullName();
      for (std::size_t i = 0; i < staticTrips.size(); ++i) {
        if (staticTrips[i] < 0) {
          ++declined;
          continue;
        }
        if (profile.loopTripCounts[i] <= 0) continue;  // never entered
        ++compared;
        EXPECT_DOUBLE_EQ(static_cast<double>(staticTrips[i]),
                         profile.loopTripCounts[i])
            << w.fullName() << " loop " << i;
      }
    }
  }
  std::cout << "static trip tiers: " << compared
            << " loops checked against the profiler, " << declined
            << " declined (data-dependent)\n";
  ASSERT_GT(compared, 0u);
}

// The launch-parametric corpus: kernels whose loop bounds come from scalar
// arguments or NDRange geometry. Before the dataflow tier every one of these
// loops fell through to the fallback knob; the tier must retire at least 30%
// of them (here: all the launch-uniform ones) and agree with the profiler on
// each, while still declining the per-work-item and data-dependent bounds.
TEST(DataflowProperty, ParametricLoopsRetireFallbacksAndMatchProfiler) {
  struct Parametric {
    const char* name;
    const char* src;
    bool resolvable;  ///< launch-uniform bound: the tier must resolve it
  };
  const Parametric corpus[] = {
      {"scalar-arg bound",
       "__kernel void k(__global const float* a, __global float* out, int n)\n"
       "{\n"
       "  float s = 0.0f;\n"
       "  for (int i = 0; i < n; ++i) s += a[i];\n"
       "  out[get_global_id(0)] = s;\n"
       "}\n",
       true},
      {"local-size bound",
       "__kernel void k(__global const float* a, __global float* out) {\n"
       "  float s = 0.0f;\n"
       "  for (int i = 0; i < (int)get_local_size(0); ++i) s += a[i];\n"
       "  out[get_global_id(0)] = s;\n"
       "}\n",
       true},
      {"num-groups bound",
       "__kernel void k(__global const float* a, __global float* out) {\n"
       "  float s = 0.0f;\n"
       "  for (int i = 0; i < (int)get_num_groups(0); ++i) s += a[i];\n"
       "  out[get_global_id(0)] = s;\n"
       "}\n",
       true},
      {"per-work-item bound",
       "__kernel void k(__global const float* a, __global float* out) {\n"
       "  int gid = get_global_id(0);\n"
       "  float s = 0.0f;\n"
       "  for (int i = 0; i < gid; ++i) s += a[i];\n"
       "  out[gid] = s;\n"
       "}\n",
       false},
      {"data-dependent bound",
       "__kernel void k(__global const int* a, __global int* out) {\n"
       "  int i = get_global_id(0);\n"
       "  int steps = 0;\n"
       "  while (i > 0) { i = a[i]; ++steps; }\n"
       "  out[get_global_id(0)] = steps;\n"
       "}\n",
       false},
  };

  interp::NdRange range;
  range.global = {64, 1, 1};
  range.local = {16, 1, 1};
  std::size_t previouslyFallback = 0;
  std::size_t retired = 0;
  for (const Parametric& pc : corpus) {
    auto p = compile(pc.src);
    const ir::Function* fn = fnOf(*p, "k");
    ASSERT_EQ(fn->loopCount, 1) << pc.name;

    // a: 64 elements; for the data-dependent case a[i] = i - 1 (chain walk).
    std::vector<std::vector<std::uint8_t>> buffers(2);
    buffers[0].resize(64 * 4);
    buffers[1].resize(64 * 4);
    for (std::int32_t i = 0; i < 64; ++i) {
      const std::int32_t v = i - 1;
      std::memcpy(buffers[0].data() + i * 4, &v, 4);
    }
    std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                           interp::KernelArg::buffer(1)};
    if (std::string(pc.name) == "scalar-arg bound") {
      args.push_back(interp::KernelArg::intScalar(23));
    }

    const auto before = cdfg::resolveTripCountsDetailed(*fn, nullptr);
    ASSERT_EQ(before.sources[0], TripSource::Fallback) << pc.name;
    ++previouslyFallback;

    const auto staticTrips =
        resolveStaticTrips(summarizeKernel(*fn), launchBinding(range, args), {});
    if (!pc.resolvable) {
      EXPECT_EQ(staticTrips[0], -1) << pc.name;
      continue;
    }
    ASSERT_GE(staticTrips[0], 0) << pc.name;
    ++retired;
    const auto profile = interp::profileKernel(*fn, range, args, buffers);
    ASSERT_TRUE(profile.ok) << pc.name << ": " << profile.error;
    ASSERT_EQ(profile.loopTripCounts.size(), 1u);
    EXPECT_DOUBLE_EQ(static_cast<double>(staticTrips[0]),
                     profile.loopTripCounts[0])
        << pc.name;
  }
  EXPECT_GE(static_cast<double>(retired),
            0.30 * static_cast<double>(previouslyFallback));
  EXPECT_EQ(retired, 3u);
}

// Static cross-work-item edges are a sound over-approximation of the
// profiled ones: the profiler-free RecMII never undercuts the profiled
// RecMII, and matches it on >= 80% of the pipeline-capable kernels.
TEST(DataflowProperty, StaticRecMiiNeverUndercutsProfiledRecMii) {
  const model::Device device = model::Device::virtex7();
  const model::DesignPoint design;  // wg 64x1x1, 1 PE, pipeline mode
  std::size_t pipelineKernels = 0;
  std::size_t equalRecMii = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled);
      const ir::Function& fn = *compiled->fn;
      const interp::NdRange range = workloadRange(w);
      const auto profile = interp::profileKernel(fn, range, compiled->args,
                                                 compiled->buffers);
      ASSERT_TRUE(profile.ok) << w.fullName() << ": " << profile.error;

      model::StaticInputs statics;
      statics.summary = summarizeKernel(fn);
      statics.leafRanges = LeafRanges::fromRange(range);
      const SymBinding bind = launchBinding(range, compiled->args);
      for (const auto& [arg, value] : bind.scalarArgs) {
        statics.leafRanges.set(Sym::ScalarArg, arg, Interval::point(value));
      }
      statics.staticTrips = resolveStaticTrips(statics.summary, bind, {});

      cdfg::AnalyzeOptions staticOpts;
      staticOpts.staticTripCounts = &statics.staticTrips;
      staticOpts.summary = &statics.summary;
      staticOpts.leafRanges = &statics.leafRanges;
      const auto budget = model::peBudget(device, design);
      const cdfg::KernelAnalysis profiledA = cdfg::analyzeKernel(
          fn, device.opLatencies, budget, &profile, {});
      const cdfg::KernelAnalysis staticA = cdfg::analyzeKernel(
          fn, device.opLatencies, budget, nullptr, staticOpts);

      const int profiledRecMii = sched::computeRecMII(profiledA.pipeline);
      const int staticRecMii = sched::computeRecMII(staticA.pipeline);
      EXPECT_GE(staticRecMii, profiledRecMii) << w.fullName();
      if (profiledA.barrierCount == 0) {
        ++pipelineKernels;
        if (staticRecMii == profiledRecMii) ++equalRecMii;
      }
    }
  }
  std::cout << "static RecMII == profiled RecMII on " << equalRecMii << "/"
            << pipelineKernels << " pipeline-capable kernels\n";
  ASSERT_GT(pipelineKernels, 0u);
  EXPECT_GE(static_cast<double>(equalRecMii),
            0.80 * static_cast<double>(pipelineKernels));
}

// A lint report that prunes nothing must leave the explorer's results
// bit-identical to an exploration without any lint report attached.
TEST(DataflowProperty, NoPruneExplorationIsBitIdentical) {
  auto p = compile(
      "__kernel void scale(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] * 2.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "scale");
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(256 * 4, 1), std::vector<std::uint8_t>(256 * 4)};
  model::LaunchInfo launch;
  launch.fn = fn;
  launch.range.global = {256, 1, 1};
  launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
  launch.buffers = &buffers;
  model::FlexCl flexcl(model::Device::virtex7());

  std::vector<model::DesignPoint> space(3);
  space[0].workGroupSize = {32, 1, 1};
  space[1].workGroupSize = {64, 1, 1};
  space[2].workGroupSize = {64, 1, 1};
  space[2].peParallelism = 2;

  interp::NdRange range;
  range.global = {256, 1, 1};
  range.local = {64, 1, 1};
  analysis::LintOptions lintOpts;
  lintOpts.range = &range;
  lintOpts.args = &launch.args;
  lintOpts.buffers = &buffers;
  const analysis::LintReport lint = analysis::runLintPasses(*fn, lintOpts);
  ASSERT_FALSE(lint.hasErrors());

  dse::ExplorerOptions withLint;
  withLint.lint = &lint;
  dse::Explorer linted(flexcl, launch, withLint);
  const dse::ExplorationResult r1 = linted.explore(space);
  EXPECT_EQ(r1.skippedCount, 0);

  dse::Explorer bare(flexcl, launch, {});
  const dse::ExplorationResult r2 = bare.explore(space);
  ASSERT_EQ(r1.designs.size(), r2.designs.size());
  for (std::size_t i = 0; i < r1.designs.size(); ++i) {
    EXPECT_EQ(r1.designs[i].flexclCycles, r2.designs[i].flexclCycles) << i;
    EXPECT_EQ(r1.designs[i].simCycles, r2.designs[i].simCycles) << i;
    EXPECT_EQ(r1.designs[i].skipped, r2.designs[i].skipped) << i;
  }
  EXPECT_EQ(r1.bestByFlexcl, r2.bestByFlexcl);
  EXPECT_EQ(r1.bestBySim, r2.bestBySim);
}

}  // namespace
}  // namespace flexcl::analysis::dataflow
