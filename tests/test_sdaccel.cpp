#include <gtest/gtest.h>

#include "ir/lower.h"
#include "model/flexcl.h"
#include "sdaccel/sdaccel_estimator.h"

namespace flexcl::sdaccel {
namespace {

struct Fixture {
  std::unique_ptr<ir::CompiledProgram> program;
  std::vector<std::vector<std::uint8_t>> buffers;
  model::LaunchInfo launch;
  model::FlexCl flexcl{model::Device::virtex7()};

  explicit Fixture(
      const std::string& src =
          "__kernel void k(__global const float* a, __global float* b) {\n"
          "  int i = get_global_id(0);\n"
          "  b[i] = a[i] * 2.0f;\n"
          "}\n") {
    DiagnosticEngine diags;
    program = ir::compileOpenCl(src, diags);
    EXPECT_TRUE(program) << diags.str();
    buffers = {std::vector<std::uint8_t>(1024 * 4, 1),
               std::vector<std::uint8_t>(1024 * 4)};
    launch.fn = program->module->functions().front().get();
    launch.range.global = {1024, 1, 1};
    launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    launch.buffers = &buffers;
  }

  std::optional<SdaccelEstimate> estimate(const model::DesignPoint& dp) {
    cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, dp);
    return estimateSdaccel(*launch.fn, analysis, flexcl.device(), dp,
                           launch.range.globalCount());
  }
};

TEST(Sdaccel, SimpleDesignSucceeds) {
  Fixture f;
  auto est = f.estimate(model::DesignPoint{});
  ASSERT_TRUE(est.has_value());
  EXPECT_GT(est->cycles, 0.0);
  EXPECT_GT(est->estimationMinutes, 0.0);
}

TEST(Sdaccel, FailsOnManyCus) {
  Fixture f;
  model::DesignPoint dp;
  dp.numComputeUnits = 4;
  EXPECT_FALSE(f.estimate(dp).has_value());
  dp.numComputeUnits = 2;
  dp.workItemPipeline = false;
  EXPECT_TRUE(f.estimate(dp).has_value());
}

TEST(Sdaccel, FailsOnDynamicLoopsWithWidePe) {
  Fixture f(
      "__kernel void k(__global const int* a, __global int* b, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  int s = 0;\n"
      "  for (int j = 0; j < n; j++) { s += a[(i + j) % 1024]; }\n"
      "  b[i] = s;\n"
      "}\n");
  f.launch.args.push_back(interp::KernelArg::intScalar(8));
  model::DesignPoint wide;
  wide.peParallelism = 4;
  EXPECT_FALSE(f.estimate(wide).has_value());
  model::DesignPoint narrow;
  narrow.peParallelism = 2;
  EXPECT_TRUE(f.estimate(narrow).has_value());
}

TEST(Sdaccel, UnderestimatesMemoryVersusFlexCl) {
  // Bias #1: a memory-heavy kernel gets a much cheaper memory charge from
  // the SDAccel-style estimator than from FlexCL's pattern model.
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float acc = 0.0f;\n"
      "  for (int j = 0; j < 32; j++) { acc += a[(i * 353 + j * 97) % 1024]; }\n"
      "  b[i] = acc;\n"
      "}\n");
  model::DesignPoint dp;
  auto sd = f.estimate(dp);
  ASSERT_TRUE(sd.has_value());
  const model::Estimate fx = f.flexcl.estimate(f.launch, dp);
  ASSERT_TRUE(fx.ok);
  EXPECT_LT(sd->cycles, fx.cycles);
}

TEST(Sdaccel, ConservativeOnBranchyControl) {
  // Bias #2: both branches are charged; FlexCL takes the max.
  Fixture f(
      "__kernel void k(__global const float* a, __global float* b, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  float v;\n"
      "  if (i % 2 == 0) { v = a[i] / 3.0f; }\n"
      "  else { v = a[i] / 5.0f; }\n"
      "  b[i] = v;\n"
      "}\n");
  f.launch.args.push_back(interp::KernelArg::intScalar(0));
  model::DesignPoint dp;
  dp.workItemPipeline = false;  // isolate the depth estimate
  auto sd = f.estimate(dp);
  ASSERT_TRUE(sd.has_value());
  const model::Estimate fx = f.flexcl.estimate(f.launch, dp);
  // Serialised-both-branches depth > max-of-branches depth.
  EXPECT_GT(sd->cycles, fx.pe.depth);
}

TEST(Sdaccel, IgnoresDispatchOverhead) {
  // Bias #3: with tiny work-groups, SDAccel scales perfectly with CUs while
  // FlexCL's eq. 8 collapses concurrency.
  Fixture f;
  model::DesignPoint one;
  one.workGroupSize = {4, 1, 1};
  one.workItemPipeline = false;
  model::DesignPoint two = one;
  two.numComputeUnits = 2;
  auto sd1 = f.estimate(one);
  auto sd2 = f.estimate(two);
  ASSERT_TRUE(sd1 && sd2);
  EXPECT_NEAR(sd2->cycles, sd1->cycles / 2, sd1->cycles * 0.02);
}

TEST(Sdaccel, FailurePredicateIsDeterministic) {
  Fixture f;
  cdfg::KernelAnalysis analysis = f.flexcl.analysisFor(f.launch, model::DesignPoint{});
  model::DesignPoint dp;
  dp.numComputeUnits = 4;
  EXPECT_EQ(sdaccelFails(*f.launch.fn, analysis, dp),
            sdaccelFails(*f.launch.fn, analysis, dp));
}

}  // namespace
}  // namespace flexcl::sdaccel
