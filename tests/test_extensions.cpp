// Tests for the extension features beyond the paper's evaluated space:
// resource estimation, inner-loop pipelining, and model option toggles.
#include <gtest/gtest.h>

#include "dse/design_space.h"
#include "ir/lower.h"
#include "model/gpu_model.h"
#include "model/resource_estimate.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace flexcl::model {
namespace {

struct Loaded {
  std::shared_ptr<workloads::CompiledWorkload> compiled;
  LaunchInfo launch;
};

Loaded load(const char* suite, const char* benchmark, const char* kernel) {
  const workloads::Workload* w = workloads::findWorkload(suite, benchmark, kernel);
  EXPECT_NE(w, nullptr);
  std::string error;
  auto compiled = workloads::compileWorkload(*w, &error);
  EXPECT_TRUE(compiled) << error;
  Loaded l;
  l.compiled = std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
  l.launch = l.compiled->launch();
  return l;
}

// ---------------------------------------------------------------------------
// Resource estimation
// ---------------------------------------------------------------------------

TEST(ResourceEstimate, ScalesWithReplication) {
  Loaded l = load("polybench", "gemm", "gemm");
  FlexCl flexcl(Device::virtex7());
  DesignPoint one;
  cdfg::KernelAnalysis analysis = flexcl.analysisFor(l.launch, one);
  const ResourceEstimate r1 = estimateResources(analysis, flexcl.device(), one);

  DesignPoint big;
  big.peParallelism = 4;
  big.numComputeUnits = 2;
  const ResourceEstimate r8 = estimateResources(analysis, flexcl.device(), big);

  EXPECT_GT(r1.dspPerPe, 0);
  EXPECT_EQ(r8.totalDsp, r1.dspPerPe * 8);
  EXPECT_GT(r8.dspUtilisation, r1.dspUtilisation);
}

TEST(ResourceEstimate, LocalMemoryCountsPerCu) {
  Loaded l = load("rodinia", "hotspot", "hotspot");  // 16x16 float tile
  FlexCl flexcl(Device::virtex7());
  DesignPoint dp;
  dp.numComputeUnits = 4;
  cdfg::KernelAnalysis analysis = flexcl.analysisFor(l.launch, dp);
  const ResourceEstimate r = estimateResources(analysis, flexcl.device(), dp);
  EXPECT_EQ(r.bramBytesPerCu, 16u * 16u * 4u);
  EXPECT_EQ(r.totalBramBytes, 4u * 16u * 16u * 4u);
  EXPECT_TRUE(r.fits);
}

TEST(ResourceEstimate, OverCommitDetected) {
  Loaded l = load("rodinia", "lavaMD", "lavaMD");  // DSP-hungry (exp in loop)
  FlexCl flexcl(Device::virtex7());
  DesignPoint dp;
  dp.peParallelism = 8;
  dp.numComputeUnits = 4;
  cdfg::KernelAnalysis analysis = flexcl.analysisFor(l.launch, dp);
  const ResourceEstimate r = estimateResources(analysis, flexcl.device(), dp);
  EXPECT_FALSE(r.fits);
  EXPECT_LT(r.maxComputeUnitsThatFit, 4);
  EXPECT_NE(r.str().find("DOES NOT FIT"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Inner-loop pipelining
// ---------------------------------------------------------------------------

TEST(LoopPipeline, ReducesLoopKernelLatency) {
  Loaded l = load("polybench", "gemm", "gemm");
  FlexCl flexcl(Device::virtex7());
  DesignPoint off;
  DesignPoint on = off;
  on.innerLoopPipeline = true;
  const Estimate a = flexcl.estimate(l.launch, off);
  const Estimate b = flexcl.estimate(l.launch, on);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_LT(b.pe.iiComp, a.pe.iiComp);
  EXPECT_LT(b.cycles, a.cycles);
}

TEST(LoopPipeline, SimulatorFollowsTheModel) {
  Loaded l = load("polybench", "gemm", "gemm");
  FlexCl flexcl(Device::virtex7());
  DesignPoint on;
  on.innerLoopPipeline = true;
  const Estimate est = flexcl.estimate(l.launch, on);
  const interp::NdRange range = FlexCl::rangeFor(l.launch, on);
  const sim::SimInput input =
      sim::prepareSimInput(*l.launch.fn, range, l.launch.args, *l.launch.buffers);
  const sim::SimResult sr = sim::simulate(input, flexcl.device(), on);
  ASSERT_TRUE(sr.ok);
  EXPECT_LT(std::abs(est.cycles - sr.cycles) / sr.cycles, 0.35);
}

TEST(LoopPipeline, RecurrenceStillBoundsTheLoop) {
  // A loop whose body carries a long dependence chain (acc = exp(acc) + x)
  // cannot pipeline below its recurrence: the gain must be bounded.
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  float acc = 0.0f;\n"
      "  for (int j = 0; j < 32; j++) { acc = exp(acc * 0.001f) + a[j]; }\n"
      "  b[i] = acc;\n"
      "}\n",
      diags);
  ASSERT_TRUE(program) << diags.str();
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(1024 * 4, 1), std::vector<std::uint8_t>(1024 * 4)};
  LaunchInfo launch;
  launch.fn = program->module->functions().front().get();
  launch.range.global = {1024, 1, 1};
  launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
  launch.buffers = &buffers;

  FlexCl flexcl(Device::virtex7());
  DesignPoint off;
  DesignPoint on = off;
  on.innerLoopPipeline = true;
  const Estimate a = flexcl.estimate(launch, off);
  const Estimate b = flexcl.estimate(launch, on);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // exp(18) + fmul(5) + fadd(7) recurrence: II_loop >= ~30, so the loop can
  // shrink only modestly versus its ~35-cycle serial iteration.
  EXPECT_GT(b.pe.iiComp, a.pe.iiComp * 0.5);
}

// ---------------------------------------------------------------------------
// Work-group pipelining
// ---------------------------------------------------------------------------

TEST(WorkGroupPipeline, RemovesPerWaveDrain) {
  Loaded l = load("rodinia", "dwt2d", "compute");
  FlexCl flexcl(Device::virtex7());
  DesignPoint off;
  off.workGroupSize = {32, 1, 1};  // many waves -> many drains to save
  DesignPoint on = off;
  on.workGroupPipeline = true;
  const Estimate a = flexcl.estimate(l.launch, off);
  const Estimate b = flexcl.estimate(l.launch, on);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_LT(b.cycles, a.cycles);
}

TEST(WorkGroupPipeline, SimulatorFollows) {
  Loaded l = load("rodinia", "dwt2d", "compute");
  FlexCl flexcl(Device::virtex7());
  DesignPoint on;
  on.workGroupSize = {32, 1, 1};
  on.workGroupPipeline = true;
  const Estimate est = flexcl.estimate(l.launch, on);
  const interp::NdRange range = FlexCl::rangeFor(l.launch, on);
  const sim::SimInput input =
      sim::prepareSimInput(*l.launch.fn, range, l.launch.args, *l.launch.buffers);
  const sim::SimResult withWg = sim::simulate(input, flexcl.device(), on);
  DesignPoint off = on;
  off.workGroupPipeline = false;
  const sim::SimResult without = sim::simulate(input, flexcl.device(), off);
  ASSERT_TRUE(withWg.ok);
  ASSERT_TRUE(without.ok);
  EXPECT_LT(withWg.cycles, without.cycles);
  EXPECT_LT(std::abs(est.cycles - withWg.cycles) / withWg.cycles, 0.35);
}

TEST(WorkGroupPipeline, ExtensionAxesEnlargeTheSpace) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  dse::SpaceOptions opts;
  const auto base = dse::enumerateDesignSpace(range, false, opts);
  opts.varyInnerLoopPipeline = true;
  opts.varyWorkGroupPipeline = true;
  const auto extended = dse::enumerateDesignSpace(range, false, opts);
  EXPECT_GT(extended.size(), base.size());
  std::set<std::uint64_t> ids;
  for (const auto& dp : extended) ids.insert(dp.stableId());
  EXPECT_EQ(ids.size(), extended.size());
}


// ---------------------------------------------------------------------------
// Kernel vectorisation (paper footnote 1)
// ---------------------------------------------------------------------------

TEST(Vectorization, VectorKernelEstimatesEndToEnd) {
  // A float4 kernel compiles, profiles, models and simulates; its vector ops
  // carry lane-scaled resource usage.
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(
      "__kernel void vscale(__global const float4* a, __global float4* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] * 2.0f + 1.0f;\n"
      "}\n",
      diags);
  ASSERT_TRUE(program) << diags.str();
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(1024 * 16, 1),
      std::vector<std::uint8_t>(1024 * 16)};
  LaunchInfo launch;
  launch.fn = program->module->functions().front().get();
  launch.range.global = {1024, 1, 1};
  launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
  launch.buffers = &buffers;

  FlexCl flexcl(Device::virtex7());
  const Estimate est = flexcl.estimate(launch, DesignPoint{});
  ASSERT_TRUE(est.ok) << est.error;
  EXPECT_GT(est.cycles, 0.0);
  // A float4 multiply costs 4x the DSPs of a scalar one.
  cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, DesignPoint{});
  EXPECT_GE(analysis.totals.dspUnits, 4.0 * 3);  // fmul: 3 DSP/lane

  const interp::NdRange range = FlexCl::rangeFor(launch, DesignPoint{});
  const sim::SimInput input =
      sim::prepareSimInput(*launch.fn, range, launch.args, buffers);
  const sim::SimResult sr = sim::simulate(input, flexcl.device(), DesignPoint{});
  ASSERT_TRUE(sr.ok);
  EXPECT_LT(std::abs(est.cycles - sr.cycles) / sr.cycles, 0.35);
}

TEST(Vectorization, DesignVectorWidthActsAsPeMultiplier) {
  // Footnote 1: "using 16 scalar PEs of int type to model one vectorized PE
  // of int16 vector type" — vectorWidth multiplies the effective PEs.
  Loaded l = load("rodinia", "dwt2d", "compute");
  FlexCl flexcl(Device::virtex7());
  DesignPoint scalar;
  scalar.peParallelism = 4;
  DesignPoint vec;
  vec.peParallelism = 1;
  vec.vectorWidth = 4;
  const Estimate a = flexcl.estimate(l.launch, scalar);
  const Estimate b = flexcl.estimate(l.launch, vec);
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_EQ(a.cu.effectivePes, b.cu.effectivePes);
  EXPECT_NEAR(a.cycles, b.cycles, a.cycles * 0.05);
}


// ---------------------------------------------------------------------------
// GPU roofline comparator
// ---------------------------------------------------------------------------

TEST(GpuModel, RooflineTakesMaxOfComputeAndMemory) {
  Loaded l = load("polybench", "gemm", "gemm");
  FlexCl flexcl(Device::virtex7());
  const DesignPoint probe;
  const cdfg::KernelAnalysis analysis = flexcl.analysisFor(l.launch, probe);
  const interp::KernelProfile& profile = flexcl.profileFor(l.launch, probe);
  const GpuEstimate est =
      estimateGpu(analysis, profile, l.launch.range, GpuDevice::kepler());
  ASSERT_TRUE(est.ok);
  EXPECT_GT(est.totalOps, 0.0);
  EXPECT_GT(est.totalBytes, 0.0);
  EXPECT_GE(est.milliseconds, std::max(est.computeMs, est.memoryMs));
  EXPECT_EQ(est.memoryBound, est.memoryMs > est.computeMs);
}

TEST(GpuModel, CoalescedWarpsShrinkTraffic) {
  // Stride-1 across work-items coalesces into warp transactions; a scattered
  // access pattern of the same volume moves more DRAM bytes.
  DiagnosticEngine diags;
  auto contiguous = ir::compileOpenCl(
      "__kernel void c(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i];\n"
      "}\n",
      diags);
  ASSERT_TRUE(contiguous) << diags.str();
  auto scattered = ir::compileOpenCl(
      "__kernel void s(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[(i * 977) % 1024];\n"
      "}\n",
      diags);
  ASSERT_TRUE(scattered) << diags.str();

  FlexCl flexcl(Device::virtex7());
  const GpuDevice gpu = GpuDevice::kepler();
  double bytes[2];
  int idx = 0;
  for (auto* program : {contiguous.get(), scattered.get()}) {
    std::vector<std::vector<std::uint8_t>> buffers = {
        std::vector<std::uint8_t>(1024 * 4, 1),
        std::vector<std::uint8_t>(1024 * 4)};
    LaunchInfo launch;
    launch.fn = program->module->functions().front().get();
    launch.range.global = {1024, 1, 1};
    launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    launch.buffers = &buffers;
    const DesignPoint probe;
    const cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, probe);
    const interp::KernelProfile& profile = flexcl.profileFor(launch, probe);
    const GpuEstimate est = estimateGpu(analysis, profile, launch.range, gpu);
    ASSERT_TRUE(est.ok);
    bytes[idx++] = est.totalBytes;
  }
  EXPECT_GT(bytes[1], bytes[0] * 2);
}

TEST(GpuModel, ScalesLinearlyWithWorkItems) {
  Loaded l = load("rodinia", "nn", "nn");
  FlexCl flexcl(Device::virtex7());
  const DesignPoint probe;
  const cdfg::KernelAnalysis analysis = flexcl.analysisFor(l.launch, probe);
  const interp::KernelProfile& profile = flexcl.profileFor(l.launch, probe);
  const GpuDevice gpu = GpuDevice::kepler();

  interp::NdRange big = l.launch.range;
  big.global[0] *= 16;
  const GpuEstimate small = estimateGpu(analysis, profile, l.launch.range, gpu);
  const GpuEstimate large = estimateGpu(analysis, profile, big, gpu);
  ASSERT_TRUE(small.ok);
  ASSERT_TRUE(large.ok);
  EXPECT_NEAR(large.totalOps, small.totalOps * 16, small.totalOps * 0.01);
  EXPECT_NEAR(large.totalBytes, small.totalBytes * 16, small.totalBytes * 0.01);
}

TEST(LoopPipeline, NoEffectOnLoopFreeKernels) {
  Loaded l = load("rodinia", "cfd", "time_step");
  FlexCl flexcl(Device::virtex7());
  DesignPoint off;
  DesignPoint on = off;
  on.innerLoopPipeline = true;
  EXPECT_DOUBLE_EQ(flexcl.estimate(l.launch, off).cycles,
                   flexcl.estimate(l.launch, on).cycles);
}

}  // namespace
}  // namespace flexcl::model
