#include <gtest/gtest.h>

#include "ocl/preprocessor.h"

namespace flexcl::ocl {
namespace {

std::string pp(const std::string& src, DiagnosticEngine* diagsOut = nullptr,
               PreprocessorOptions opts = {}) {
  DiagnosticEngine diags;
  std::string out = preprocess(src, diags, opts);
  if (diagsOut) *diagsOut = diags;
  return out;
}

TEST(Preprocessor, ObjectMacroSubstitution) {
  EXPECT_EQ(pp("#define N 16\nint x = N;\n"), "\nint x = 16;\n");
}

TEST(Preprocessor, MacroExpandsToMacro) {
  const std::string out = pp("#define A B\n#define B 7\nint x = A;\n");
  EXPECT_NE(out.find("int x = 7;"), std::string::npos);
}

TEST(Preprocessor, NoSubstitutionInsideIdentifiers) {
  const std::string out = pp("#define N 16\nint NN = 1; int xN = N;\n");
  EXPECT_NE(out.find("int NN = 1; int xN = 16;"), std::string::npos);
}

TEST(Preprocessor, UndefStopsSubstitution) {
  const std::string out = pp("#define N 16\n#undef N\nint x = N;\n");
  EXPECT_NE(out.find("int x = N;"), std::string::npos);
}

TEST(Preprocessor, IfdefElseEndif) {
  const std::string out =
      pp("#define FEATURE 1\n#ifdef FEATURE\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_EQ(out.find("int b;"), std::string::npos);
}

TEST(Preprocessor, IfndefTakesElse) {
  const std::string out = pp("#ifndef MISSING\nint a;\n#else\nint b;\n#endif\n");
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_EQ(out.find("int b;"), std::string::npos);
}

TEST(Preprocessor, PragmaUnrollRewritten) {
  const std::string out = pp("#pragma unroll 4\nfor (;;) {}\n");
  EXPECT_NE(out.find("__attribute__((opencl_unroll_hint(4)))"), std::string::npos);
}

TEST(Preprocessor, PragmaUnrollWithoutFactorMeansFull) {
  const std::string out = pp("#pragma unroll\nfor (;;) {}\n");
  EXPECT_NE(out.find("opencl_unroll_hint(0)"), std::string::npos);
}

TEST(Preprocessor, LineNumbersPreserved) {
  // Directive lines become blank lines so line 3 stays line 3.
  const std::string out = pp("#define A 1\n#define B 2\nint x = A + B;\n");
  EXPECT_EQ(out, "\n\nint x = 1 + 2;\n");
}

TEST(Preprocessor, PredefinedMacros) {
  PreprocessorOptions opts;
  opts.defines["SIZE"] = "128";
  const std::string out = pp("int n = SIZE;\n", nullptr, opts);
  EXPECT_NE(out.find("int n = 128;"), std::string::npos);
}

TEST(Preprocessor, FunctionLikeMacroRejected) {
  DiagnosticEngine diags;
  pp("#define F(x) x\n", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Preprocessor, UnterminatedIfdefReported) {
  DiagnosticEngine diags;
  pp("#ifdef X\nint a;\n", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Preprocessor, UnknownDirectiveReported) {
  DiagnosticEngine diags;
  pp("#frobnicate\n", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Preprocessor, BlockCommentsKeepLineCount) {
  const std::string out = pp("int a; /* x\ny */ int b;\n");
  // The comment spanned one newline; output must still have 2 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Preprocessor, CommentInsideStringNotSupported) {
  // We do not lex strings during comment stripping; kernels do not use string
  // literals, so simply check the text survives unharmed without directives.
  const std::string out = pp("int a = 1;\n");
  EXPECT_EQ(out, "int a = 1;\n");
}

}  // namespace
}  // namespace flexcl::ocl
