// Race verifier tests (DESIGN.md §15): hand-written racy/clean corpus with
// pinned witnesses, dynamic-checker unit cases, the suite-wide static/dynamic
// cross-validation sweep (static RaceFree is never dynamically contradicted;
// static Racy is always dynamically witnessed), conflict-tracking elision
// bit-identity in the simulator, the store codec round-trip, and the
// uniformity-discharged-barrier regression count.
#include <gtest/gtest.h>

#include <iostream>
#include <map>

#include "analysis/analyze.h"
#include "analysis/raceverify/raceverify.h"
#include "analysis/symbolic.h"
#include "interp/interpreter.h"
#include "ir/lower.h"
#include "obs/registry.h"
#include "serve/store/codec.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace flexcl::analysis::raceverify {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

const ir::Function* fnOf(const ir::CompiledProgram& p, const std::string& name) {
  const ir::Function* fn = p.module->findFunction(name);
  EXPECT_NE(fn, nullptr);
  return fn;
}

/// The local size the other suite sweeps use (mirrors test_staticprof.cpp).
interp::NdRange workloadRange(const workloads::Workload& w) {
  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 4, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }
  return range;
}

RaceVerdict verify(const ir::Function& fn, const interp::NdRange& range,
                   const std::vector<interp::KernelArg>& args,
                   const std::vector<std::vector<std::uint8_t>>& buffers) {
  const KernelSummary summary = summarizeKernel(fn);
  VerifyOptions options;
  options.args = &args;
  std::vector<std::uint64_t> bufferBytes;
  bufferBytes.reserve(buffers.size());
  for (const auto& b : buffers) bufferBytes.push_back(b.size());
  options.bufferBytes = &bufferBytes;
  return verifyRaces(summary, range, options);
}

/// Runs the dynamic race checker over the full range on a scratch copy.
interp::InterpResult dynRaces(const ir::Function& fn,
                              const interp::NdRange& range,
                              const std::vector<interp::KernelArg>& args,
                              std::vector<std::vector<std::uint8_t>> buffers) {
  interp::InterpOptions opts;
  opts.raceCheck = true;
  return interp::runKernel(fn, range, args, buffers, opts);
}

std::vector<std::vector<std::uint8_t>> intBuffers(std::size_t count,
                                                  std::size_t elems) {
  return std::vector<std::vector<std::uint8_t>>(
      count, std::vector<std::uint8_t>(elems * sizeof(std::int32_t)));
}

// ---------------------------------------------------------------------------
// Racy corpus (pinned witnesses)
// ---------------------------------------------------------------------------

TEST(RaceCorpus, GlobalWaWSingleCellIsRacyWithWitness) {
  auto p = compile(
      "__kernel void k(__global int* out, __global const int* in) {\n"
      "  int gid = get_global_id(0);\n"
      "  out[gid] = in[gid];\n"
      "  out[0] = gid;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{64, 1, 1}, {16, 1, 1}};
  auto buffers = intBuffers(2, 64);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const RaceVerdict v = verify(*fn, range, args, buffers);
  ASSERT_EQ(v.kind, RaceVerdictKind::Racy) << v.reason;
  EXPECT_GE(v.racyPairs, 1u);
  ASSERT_FALSE(v.pairs.empty());
  const PairResult* racy = nullptr;
  for (const PairResult& pr : v.pairs) {
    if (pr.kind == RaceVerdictKind::Racy) {
      racy = &pr;
      break;
    }
  }
  ASSERT_NE(racy, nullptr);
  ASSERT_TRUE(racy->witness.has_value());
  const RaceWitness& w = *racy->witness;
  EXPECT_NE(w.workItemA, w.workItemB);
  EXPECT_EQ(w.space, ir::AddressSpace::Global);
  EXPECT_EQ(w.baseIndex, 0);  // the `out` buffer
  // Byte windows must overlap: [offsetA, offsetA+sizeA) ∩ [offsetB, ...).
  EXPECT_LT(w.offsetA, w.offsetB + static_cast<std::int64_t>(w.sizeB));
  EXPECT_LT(w.offsetB, w.offsetA + static_cast<std::int64_t>(w.sizeA));
  // And the dynamic checker reproduces it.
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_GT(dyn.raceCount, 0u);
}

TEST(RaceCorpus, LocalRaWMissingBarrierIsRacy) {
  auto p = compile(
      "__kernel void k(__global int* out) {\n"
      "  __local int tmp[16];\n"
      "  int lid = get_local_id(0);\n"
      "  tmp[lid] = lid;\n"
      "  out[get_global_id(0)] = tmp[15 - lid];\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{32, 1, 1}, {16, 1, 1}};
  auto buffers = intBuffers(1, 32);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const RaceVerdict v = verify(*fn, range, args, buffers);
  ASSERT_EQ(v.kind, RaceVerdictKind::Racy) << v.reason;
  ASSERT_FALSE(v.pairs.empty());
  bool localWitness = false;
  for (const PairResult& pr : v.pairs) {
    if (pr.kind == RaceVerdictKind::Racy && pr.witness.has_value() &&
        pr.witness->space == ir::AddressSpace::Local) {
      localWitness = true;
      // Within one work-group by construction.
      EXPECT_EQ(pr.witness->groupA, pr.witness->groupB);
    }
  }
  EXPECT_TRUE(localWitness);
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_GT(dyn.raceCount, 0u);
}

TEST(RaceCorpus, LocalRaWWithBarrierIsRaceFree) {
  auto p = compile(
      "__kernel void k(__global int* out) {\n"
      "  __local int tmp[16];\n"
      "  int lid = get_local_id(0);\n"
      "  tmp[lid] = lid;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = tmp[15 - lid];\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{32, 1, 1}, {16, 1, 1}};
  auto buffers = intBuffers(1, 32);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const RaceVerdict v = verify(*fn, range, args, buffers);
  EXPECT_EQ(v.kind, RaceVerdictKind::RaceFree)
      << v.name() << ": " << v.reason;
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_EQ(dyn.raceCount, 0u);
}

TEST(RaceCorpus, GlobalReversalRacesAcrossGroupsDespiteBarrier) {
  // Barriers only order work-items of the same group: the reversed read
  // crosses work-group boundaries, so the barrier does not discharge it.
  // (The read and the epoch-0 write are the only conflicting pair — the
  // second write goes to a separate buffer.)
  auto p = compile(
      "__kernel void k(__global int* out, __global int* res) {\n"
      "  int gid = get_global_id(0);\n"
      "  out[gid] = gid;\n"
      "  barrier(CLK_GLOBAL_MEM_FENCE);\n"
      "  res[gid] = out[31 - gid];\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{32, 1, 1}, {8, 1, 1}};
  auto buffers = intBuffers(2, 32);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const RaceVerdict v = verify(*fn, range, args, buffers);
  ASSERT_EQ(v.kind, RaceVerdictKind::Racy) << v.reason;
  bool crossGroup = false;
  for (const PairResult& pr : v.pairs) {
    if (pr.kind == RaceVerdictKind::Racy && pr.witness.has_value() &&
        pr.witness->groupA != pr.witness->groupB) {
      crossGroup = true;
    }
  }
  EXPECT_TRUE(crossGroup);
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_GT(dyn.raceCount, 0u);
}

TEST(RaceCorpus, FalseSharingDisjointStridesStayRaceFree) {
  // Every work-item touches bytes no other work-item touches (even/odd
  // split of one cache line's worth of ints): adjacent, but never
  // overlapping — must NOT be flagged.
  auto p = compile(
      "__kernel void k(__global int* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  out[2 * gid] = gid;\n"
      "  out[2 * gid + 1] = gid;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{32, 1, 1}, {8, 1, 1}};
  auto buffers = intBuffers(1, 64);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const RaceVerdict v = verify(*fn, range, args, buffers);
  EXPECT_EQ(v.kind, RaceVerdictKind::RaceFree)
      << v.name() << ": " << v.reason;
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_EQ(dyn.raceCount, 0u);
}

// ---------------------------------------------------------------------------
// Dynamic checker unit cases
// ---------------------------------------------------------------------------

TEST(RaceDynamic, RecordsCarryInstructionAndWorkItemIdentity) {
  auto p = compile(
      "__kernel void k(__global int* out) {\n"
      "  out[0] = (int)get_global_id(0);\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {4, 1, 1}};
  auto buffers = intBuffers(1, 16);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_GT(dyn.raceCount, 0u);
  ASSERT_FALSE(dyn.races.empty());
  for (const interp::RaceRecord& r : dyn.races) {
    EXPECT_NE(r.workItemA, r.workItemB);
    EXPECT_EQ(r.space, ir::AddressSpace::Global);
    EXPECT_EQ(r.buffer, 0);
    EXPECT_EQ(r.offset, 0);
    EXPECT_TRUE(r.writeA || r.writeB);  // at least one side writes
  }
}

TEST(RaceDynamic, CheckerOffLeavesResultUntouched) {
  auto p = compile(
      "__kernel void k(__global int* out) {\n"
      "  out[0] = (int)get_global_id(0);\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {4, 1, 1}};
  auto buffers = intBuffers(1, 16);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  interp::InterpOptions opts;  // raceCheck defaults off
  const interp::InterpResult off =
      interp::runKernel(*fn, range, args, buffers, opts);
  ASSERT_TRUE(off.ok) << off.error;
  EXPECT_EQ(off.raceCount, 0u);
  EXPECT_TRUE(off.races.empty());
}

TEST(RaceDynamic, BarrierEpochsSeparateSameGroupAccesses) {
  // Write-then-read of a neighbour's cell with a barrier between, one group:
  // the epoch advance at the barrier must suppress the conflict. The
  // post-barrier result goes to a separate buffer — writing it back to `out`
  // would itself race with the neighbour's same-epoch read.
  auto p = compile(
      "__kernel void k(__global int* out, __global int* res) {\n"
      "  int gid = get_global_id(0);\n"
      "  out[gid] = gid;\n"
      "  barrier(CLK_GLOBAL_MEM_FENCE);\n"
      "  res[gid] = out[15 - gid];\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {16, 1, 1}};  // one group
  auto buffers = intBuffers(2, 16);
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const interp::InterpResult dyn = dynRaces(*fn, range, args, buffers);
  ASSERT_TRUE(dyn.ok) << dyn.error;
  EXPECT_EQ(dyn.raceCount, 0u) << "barrier-ordered accesses flagged";
  // And the static verifier agrees under the same geometry.
  const RaceVerdict v = verify(*fn, range, args, buffers);
  EXPECT_EQ(v.kind, RaceVerdictKind::RaceFree)
      << v.name() << ": " << v.reason;
}

// ---------------------------------------------------------------------------
// Suite-wide static/dynamic cross-validation (the acceptance sweep)
// ---------------------------------------------------------------------------

// All 60 bundled workloads: a static RaceFree verdict must never be
// contradicted dynamically, and a static Racy verdict must be dynamically
// witnessed under the same launch. Also asserts the analysis.race.* counters
// account for every verifier call.
TEST(RaceSweep, StaticAndDynamicVerdictsAgreeOnAllWorkloads) {
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const std::uint64_t free0 = obs::counter("analysis.race.free").value();
  const std::uint64_t racy0 = obs::counter("analysis.race.racy").value();
  const std::uint64_t unknown0 = obs::counter("analysis.race.unknown").value();

  std::size_t total = 0;
  std::map<std::string, std::size_t> verdicts;
  std::map<std::string, std::size_t> unknownReasons;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled) << w.fullName();
      ++total;
      const interp::NdRange range = workloadRange(w);
      const RaceVerdict v =
          verify(*compiled->fn, range, compiled->args, compiled->buffers);
      ++verdicts[v.name()];
      if (v.kind == RaceVerdictKind::Unknown) ++unknownReasons[v.reason];

      const interp::InterpResult dyn =
          dynRaces(*compiled->fn, range, compiled->args, compiled->buffers);
      if (!dyn.ok) continue;  // interpreter limits are not race evidence
      if (v.kind == RaceVerdictKind::RaceFree) {
        EXPECT_EQ(dyn.raceCount, 0u)
            << w.fullName() << ": static race-free contradicted dynamically";
      } else if (v.kind == RaceVerdictKind::Racy) {
        EXPECT_GT(dyn.raceCount, 0u)
            << w.fullName() << ": static racy verdict (" << v.reason
            << ") not witnessed dynamically";
      }
    }
  }
  std::cout << "raceverify sweep over " << total << " workloads:\n";
  for (const auto& [name, count] : verdicts) {
    std::cout << "  " << name << ": " << count << "\n";
  }
  for (const auto& [reason, count] : unknownReasons) {
    std::cout << "  unknown x" << count << ": " << reason << "\n";
  }
  EXPECT_EQ(total, 60u);
  // Most bundled kernels must be provable one way or the other (measured:
  // 35 race-free + 2 racy; the rest are indirect-index or unresolved-trip
  // kernels the strided-affine domain cannot decide).
  EXPECT_GE(verdicts["race-free"] + verdicts["racy"], 30u);

  const std::uint64_t calls =
      (obs::counter("analysis.race.free").value() - free0) +
      (obs::counter("analysis.race.racy").value() - racy0) +
      (obs::counter("analysis.race.unknown").value() - unknown0);
  EXPECT_EQ(calls, 60u);
  obs::setEnabled(wasEnabled);
}

// ---------------------------------------------------------------------------
// Simulator conflict-tracking elision
// ---------------------------------------------------------------------------

// Dropping the dynamic conflict tracking for a proven-race-free kernel must
// not change the simulated cycle count at all — the tracking is observation,
// never simulation state.
TEST(RaceSimElision, BitIdenticalWithConflictTrackingOnAndOff) {
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const std::uint64_t run0 = obs::counter("sim.race_check.run").value();
  const std::uint64_t elided0 = obs::counter("sim.race_check.elided").value();

  const workloads::Workload& w = workloads::rodiniaSuite().front();
  auto compiled = workloads::compileWorkload(w);
  ASSERT_TRUE(compiled) << w.fullName();
  const interp::NdRange range = workloadRange(w);

  sim::SimInputOptions tracking;
  tracking.conflictTracking = true;
  sim::SimInputOptions elided;
  elided.conflictTracking = false;
  const sim::SimInput a = sim::prepareSimInput(
      *compiled->fn, range, compiled->args, compiled->buffers, tracking);
  const sim::SimInput b = sim::prepareSimInput(
      *compiled->fn, range, compiled->args, compiled->buffers, elided);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_TRUE(a.raceChecked);
  EXPECT_FALSE(b.raceChecked);
  EXPECT_EQ(b.raceConflicts, 0u);

  const model::Device device = model::Device::virtex7();
  const model::DesignPoint design;
  const sim::SimResult ra = sim::simulate(a, device, design);
  const sim::SimResult rb = sim::simulate(b, device, design);
  ASSERT_TRUE(ra.ok) << ra.error;
  ASSERT_TRUE(rb.ok) << rb.error;
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.milliseconds, rb.milliseconds);
  EXPECT_EQ(ra.dramAccesses, rb.dramAccesses);
  EXPECT_EQ(ra.dramRowHits, rb.dramRowHits);
  EXPECT_EQ(ra.memStallCycles, rb.memStallCycles);
  EXPECT_EQ(ra.dispatchStallCycles, rb.dispatchStallCycles);

  EXPECT_EQ(obs::counter("sim.race_check.run").value() - run0, 1u);
  EXPECT_EQ(obs::counter("sim.race_check.elided").value() - elided0, 1u);
  obs::setEnabled(wasEnabled);
}

// ---------------------------------------------------------------------------
// Store codec round-trip
// ---------------------------------------------------------------------------

TEST(RaceCodec, VerdictSummaryRoundTrips) {
  RaceVerdict v;
  v.kind = RaceVerdictKind::Racy;
  v.reason = "work-items 0 and 16 overlap";
  v.pairsChecked = 7;
  v.pairsProven = 4;
  v.racyPairs = 2;
  v.unknownPairs = 1;
  v.barrierIntervals = 3;
  v.epochsExact = true;

  serve::ByteWriter w;
  serve::encodeRaceVerdict(w, v);
  const std::vector<std::uint8_t> bytes = w.take();
  serve::ByteReader r(bytes);
  RaceVerdict back;
  ASSERT_TRUE(serve::decodeRaceVerdict(r, &back));
  EXPECT_EQ(back.kind, v.kind);
  EXPECT_EQ(back.reason, v.reason);
  EXPECT_EQ(back.pairsChecked, v.pairsChecked);
  EXPECT_EQ(back.pairsProven, v.pairsProven);
  EXPECT_EQ(back.racyPairs, v.racyPairs);
  EXPECT_EQ(back.unknownPairs, v.unknownPairs);
  EXPECT_EQ(back.barrierIntervals, v.barrierIntervals);
  EXPECT_EQ(back.epochsExact, v.epochsExact);
}

TEST(RaceCodec, TruncatedOrOversizedPayloadIsRejected) {
  RaceVerdict v;
  v.kind = RaceVerdictKind::RaceFree;
  serve::ByteWriter w;
  serve::encodeRaceVerdict(w, v);
  std::vector<std::uint8_t> bytes = w.take();

  std::vector<std::uint8_t> truncated(bytes.begin(), bytes.end() - 1);
  serve::ByteReader rt(truncated);
  RaceVerdict out;
  EXPECT_FALSE(serve::decodeRaceVerdict(rt, &out));

  bytes.push_back(0);  // trailing byte: layout mismatch
  serve::ByteReader ro(bytes);
  EXPECT_FALSE(serve::decodeRaceVerdict(ro, &out));

  std::vector<std::uint8_t> badKind = {0xff};
  serve::ByteReader rk(badKind);
  EXPECT_FALSE(serve::decodeRaceVerdict(rk, &out));
}

// ---------------------------------------------------------------------------
// Uniformity-discharged barriers (regression count)
// ---------------------------------------------------------------------------

// The dataflow-refined uniformity tiers must keep discharging barriers the
// launch geometry proves uniform across the whole suite, and the residual
// divergent-barrier warnings must not grow.
TEST(RaceSweep, UniformityDischargesBarriersAcrossSuite) {
  std::size_t discharged = 0;
  std::size_t flagged = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled) << w.fullName();
      const interp::NdRange range = workloadRange(w);
      LintOptions opts;
      opts.range = &range;
      opts.args = &compiled->args;
      opts.buffers = &compiled->buffers;
      opts.profileCrossCheck = false;
      const LintReport report = runLintPasses(*compiled->fn, opts);
      for (const LintFinding& f : report.findings) {
        if (f.rule == "provably-uniform-branch") ++discharged;
        if (f.rule == "barrier-divergence") ++flagged;
      }
    }
  }
  std::cout << "barrier uniformity sweep: " << discharged << " discharged, "
            << flagged << " flagged\n";
  // Regression pins measured over the bundled suite: its four conditional
  // barriers are genuinely data-dependent (none dischargeable — the tier
  // mechanics are unit-tested in test_analysis.cpp), and refining the
  // uniformity analysis must never ADD divergent-barrier warnings.
  EXPECT_EQ(discharged, 0u);
  EXPECT_LE(flagged, 4u);
}

}  // namespace
}  // namespace flexcl::analysis::raceverify
