// Simulator engine tests (DESIGN.md §16): suite-wide Fast-vs-Reference
// bit-identity (serial and on a 4-worker pool), dispatch-jitter seed
// determinism, CSR round-trip against the vector-of-vectors coalescing
// reference, SimScratch reuse identity, the interpreter's streaming
// TraceSink, and the skip-ahead observability counters.
#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <optional>
#include <vector>

#include "dram/coalescer.h"
#include "interp/interpreter.h"
#include "ir/lower.h"
#include "obs/registry.h"
#include "runtime/thread_pool.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace flexcl {
namespace {

/// The local size the other suite sweeps use (mirrors test_raceverify.cpp).
interp::NdRange workloadRange(const workloads::Workload& w) {
  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 4, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }
  return range;
}

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

/// Every SimResult field must agree exactly — doubles included (both
/// engines run the identical pinned event order, so there is no tolerance).
void expectBitIdentical(const sim::SimResult& a, const sim::SimResult& b,
                        const std::string& what) {
  ASSERT_EQ(a.ok, b.ok) << what << ": " << a.error << " / " << b.error;
  if (!a.ok) return;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.milliseconds, b.milliseconds) << what;
  EXPECT_EQ(a.iiHw, b.iiHw) << what;
  EXPECT_EQ(a.depthHw, b.depthHw) << what;
  EXPECT_EQ(a.effectivePes, b.effectivePes) << what;
  EXPECT_EQ(a.effectiveCus, b.effectiveCus) << what;
  EXPECT_EQ(a.dramAccesses, b.dramAccesses) << what;
  EXPECT_EQ(a.dramRowHits, b.dramRowHits) << what;
  EXPECT_EQ(a.workGroups, b.workGroups) << what;
  EXPECT_EQ(a.dramRefreshStallCycles, b.dramRefreshStallCycles) << what;
  EXPECT_EQ(a.dramBankWaitCycles, b.dramBankWaitCycles) << what;
  EXPECT_EQ(a.dramBusWaitCycles, b.dramBusWaitCycles) << what;
  EXPECT_EQ(a.memStallCycles, b.memStallCycles) << what;
  EXPECT_EQ(a.dispatchStallCycles, b.dispatchStallCycles) << what;
}

void expectSameAccesses(const std::vector<dram::CoalescedAccess>& a,
                        const std::vector<dram::CoalescedAccess>& b,
                        const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].buffer, b[i].buffer) << what << " access " << i;
    EXPECT_EQ(a[i].offset, b[i].offset) << what << " access " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << what << " access " << i;
    EXPECT_EQ(a[i].isWrite, b[i].isWrite) << what << " access " << i;
    EXPECT_EQ(a[i].workItem, b[i].workItem) << what << " access " << i;
  }
}

// ---------------------------------------------------------------------------
// Suite-wide Fast-vs-Reference bit-identity
// ---------------------------------------------------------------------------

// All 60 bundled workloads, two contrasting design points each: the fast
// engine (SoA + d-ary heap + skip-ahead) must reproduce the reference
// engine's results bit for bit, and a 4-worker pool sweep must reproduce the
// serial sweep bit for bit (jobs never change results).
TEST(SimEngineSweep, FastMatchesReferenceOnAllWorkloadsAtJobs1AndJobs4) {
  std::vector<const workloads::Workload*> all;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) all.push_back(&w);
  }
  ASSERT_EQ(all.size(), 60u);

  // The compiled programs must outlive the inputs: SimInput::fn points into
  // them and simulate() reads it.
  std::vector<std::optional<workloads::CompiledWorkload>> programs(all.size());
  std::vector<sim::SimInput> inputs(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    programs[i] = workloads::compileWorkload(*all[i]);
    ASSERT_TRUE(programs[i]) << all[i]->fullName();
    inputs[i] = sim::prepareSimInput(*programs[i]->fn, workloadRange(*all[i]),
                                     programs[i]->args, programs[i]->buffers);
    ASSERT_TRUE(inputs[i].ok) << all[i]->fullName() << ": " << inputs[i].error;
  }

  // A single-lane point and a contended multi-CU/multi-PE point (heap
  // pressure, cross-CU DRAM interleaving, jittered dispatch).
  std::vector<model::DesignPoint> designs(2);
  designs[1].peParallelism = 4;
  designs[1].numComputeUnits = 4;
  const model::Device device = model::Device::virtex7();
  sim::SimOptions fast;
  fast.engine = sim::EngineKind::Fast;
  sim::SimOptions reference;
  reference.engine = sim::EngineKind::Reference;

  const std::size_t cases = all.size() * designs.size();
  std::vector<sim::SimResult> serialFast(cases);
  std::vector<sim::SimResult> serialRef(cases);
  for (std::size_t c = 0; c < cases; ++c) {
    const sim::SimInput& input = inputs[c / designs.size()];
    const model::DesignPoint& dp = designs[c % designs.size()];
    serialFast[c] = sim::simulate(input, device, dp, fast);
    serialRef[c] = sim::simulate(input, device, dp, reference);
    expectBitIdentical(serialFast[c], serialRef[c],
                       all[c / designs.size()]->fullName() + " @ " + dp.str());
  }

  // Same sweep on 4 pool workers: results are written by index, so the
  // outcome must be byte-identical to the serial pass.
  runtime::ThreadPool pool(4);
  std::vector<sim::SimResult> pooledFast(cases);
  std::vector<sim::SimResult> pooledRef(cases);
  pool.parallelFor(cases, [&](std::size_t c) {
    const sim::SimInput& input = inputs[c / designs.size()];
    const model::DesignPoint& dp = designs[c % designs.size()];
    pooledFast[c] = sim::simulate(input, device, dp, fast);
    pooledRef[c] = sim::simulate(input, device, dp, reference);
  });
  for (std::size_t c = 0; c < cases; ++c) {
    const std::string what =
        all[c / designs.size()]->fullName() + " @ jobs4";
    expectBitIdentical(serialFast[c], pooledFast[c], what);
    expectBitIdentical(serialRef[c], pooledRef[c], what);
  }
  std::cout << "simengine sweep: " << all.size() << " workloads x "
            << designs.size() << " designs, fast == reference\n";
}

// ---------------------------------------------------------------------------
// Dispatch-jitter seed determinism
// ---------------------------------------------------------------------------

// The jittered dispatcher consumes one RNG draw per dispatch in dispatch
// order; with the pinned event order that stream is a pure function of the
// seed, so equal seeds reproduce exactly — on both engines — and different
// seeds realise different makespans.
TEST(SimEngineDeterminism, DispatchJitterIsAFunctionOfTheSeed) {
  const workloads::Workload& w = workloads::rodiniaSuite().front();
  auto compiled = workloads::compileWorkload(w);
  ASSERT_TRUE(compiled) << w.fullName();
  const sim::SimInput input = sim::prepareSimInput(
      *compiled->fn, workloadRange(w), compiled->args, compiled->buffers);
  ASSERT_TRUE(input.ok) << input.error;

  model::DesignPoint dp;
  dp.numComputeUnits = 4;  // several CUs contend for the serial dispatcher
  const model::Device device = model::Device::virtex7();
  for (std::uint64_t seed : {7ull, 1234ull}) {
    sim::SimOptions fast;
    fast.seed = seed;
    fast.dispatchJitter = 0.35;
    sim::SimOptions reference = fast;
    reference.engine = sim::EngineKind::Reference;

    const sim::SimResult f1 = sim::simulate(input, device, dp, fast);
    const sim::SimResult f2 = sim::simulate(input, device, dp, fast);
    const sim::SimResult r1 = sim::simulate(input, device, dp, reference);
    expectBitIdentical(f1, f2, "seed repeat");
    expectBitIdentical(f1, r1, "fast vs reference under jitter");
  }

  sim::SimOptions a;
  a.seed = 7;
  a.dispatchJitter = 0.35;
  sim::SimOptions b = a;
  b.seed = 1234;
  const sim::SimResult ra = sim::simulate(input, device, dp, a);
  const sim::SimResult rb = sim::simulate(input, device, dp, b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_NE(ra.cycles, rb.cycles);
}

// ---------------------------------------------------------------------------
// CSR round-trip vs the vector-of-vectors reference
// ---------------------------------------------------------------------------

// The streaming coalescer + CSR scatter must equal the obvious reference:
// materialize the trace, split it per work-item, run dram::coalesce on each
// isolated stream, and concatenate in work-item order.
TEST(SimEngineCsr, RoundTripMatchesPerWorkItemCoalescingReference) {
  std::vector<const workloads::Workload*> sample;
  const auto& rodinia = workloads::rodiniaSuite();
  const auto& polybench = workloads::polybenchSuite();
  for (std::size_t i = 0; i < 4 && i < rodinia.size(); ++i)
    sample.push_back(&rodinia[i]);
  for (std::size_t i = 0; i < 2 && i < polybench.size(); ++i)
    sample.push_back(&polybench[i]);

  for (const workloads::Workload* w : sample) {
    auto compiled = workloads::compileWorkload(*w);
    ASSERT_TRUE(compiled) << w->fullName();
    const interp::NdRange range = workloadRange(*w);

    const sim::SimInput input = sim::prepareSimInput(
        *compiled->fn, range, compiled->args, compiled->buffers);
    ASSERT_TRUE(input.ok) << w->fullName() << ": " << input.error;

    // Reference: materialized trace, one vector per work-item.
    interp::InterpOptions opts;
    opts.captureGlobalTrace = true;
    auto scratchBuffers = compiled->buffers;
    const interp::InterpResult run = interp::runKernel(
        *compiled->fn, range, compiled->args, scratchBuffers, opts);
    ASSERT_TRUE(run.ok) << w->fullName() << ": " << run.error;
    std::vector<std::vector<interp::MemoryAccessEvent>> perWi(
        range.globalCount());
    for (const interp::MemoryAccessEvent& ev : run.trace) {
      if (ev.space == ir::AddressSpace::Local) continue;
      ASSERT_LT(ev.workItem, perWi.size());
      perWi[ev.workItem].push_back(ev);
    }
    const dram::DramConfig cfg;
    std::vector<std::uint64_t> offsets{0};
    std::vector<dram::CoalescedAccess> expected;
    for (const auto& events : perWi) {
      const auto chain = dram::coalesce(events, cfg);
      expected.insert(expected.end(), chain.begin(), chain.end());
      offsets.push_back(expected.size());
    }

    ASSERT_EQ(input.accessOffsets, offsets) << w->fullName();
    expectSameAccesses(input.accesses, expected, w->fullName());
  }
}

// ---------------------------------------------------------------------------
// SimScratch reuse
// ---------------------------------------------------------------------------

// Repeated prepareSimInput calls sharing one scratch must equal fresh-scratch
// calls — including for kernels that write buffers they also read, where the
// dirty-tracking must force a re-copy of the mutated image.
TEST(SimEngineScratch, SharedScratchReproducesFreshScratchExactly) {
  const std::string selfMutating =
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = b[i] + a[i];\n"  // reads its own output buffer
      "}\n";
  const std::string pure =
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] * 2.0f;\n"
      "}\n";
  for (const std::string& src : {selfMutating, pure}) {
    auto program = compile(src);
    ASSERT_TRUE(program);
    const ir::Function& fn = *program->module->functions().front();
    std::vector<std::vector<std::uint8_t>> buffers = {
        std::vector<std::uint8_t>(512 * 4, 2),
        std::vector<std::uint8_t>(512 * 4, 1)};  // nonzero: mutation visible
    const std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                                 interp::KernelArg::buffer(1)};
    interp::NdRange range;
    range.global = {512, 1, 1};
    range.local = {64, 1, 1};

    sim::SimScratch shared;
    for (int call = 0; call < 3; ++call) {
      const sim::SimInput fresh =
          sim::prepareSimInput(fn, range, args, buffers, {});
      const sim::SimInput reused =
          sim::prepareSimInput(fn, range, args, buffers, {}, shared);
      ASSERT_TRUE(fresh.ok) << fresh.error;
      ASSERT_TRUE(reused.ok) << reused.error;
      ASSERT_EQ(fresh.accessOffsets, reused.accessOffsets) << "call " << call;
      expectSameAccesses(fresh.accesses, reused.accesses,
                         "call " + std::to_string(call));
      EXPECT_EQ(fresh.hasBarriers, reused.hasBarriers);
    }
    // prepareSimInput never mutates the caller's buffers.
    EXPECT_EQ(buffers[1], std::vector<std::uint8_t>(512 * 4, 1));
  }
}

// ---------------------------------------------------------------------------
// Interpreter trace sink
// ---------------------------------------------------------------------------

class CollectingSink final : public interp::TraceSink {
 public:
  void onAccess(const interp::MemoryAccessEvent& ev) override {
    events.push_back(ev);
  }
  std::vector<interp::MemoryAccessEvent> events;
};

// With a sink installed, events stream in execution order and the result's
// trace stays empty; the delivered stream equals the materialized one.
TEST(SimEngineTraceSink, StreamsTheExactTraceWithoutMaterializing) {
  auto program = compile(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] + 1.0f;\n"
      "}\n");
  ASSERT_TRUE(program);
  const ir::Function& fn = *program->module->functions().front();
  const std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                               interp::KernelArg::buffer(1)};
  interp::NdRange range;
  range.global = {128, 1, 1};
  range.local = {32, 1, 1};

  std::vector<std::vector<std::uint8_t>> materialBuffers = {
      std::vector<std::uint8_t>(128 * 4, 1), std::vector<std::uint8_t>(128 * 4)};
  interp::InterpOptions materialOpts;
  materialOpts.captureGlobalTrace = true;
  const interp::InterpResult material =
      interp::runKernel(fn, range, args, materialBuffers, materialOpts);
  ASSERT_TRUE(material.ok) << material.error;
  ASSERT_FALSE(material.trace.empty());

  std::vector<std::vector<std::uint8_t>> sinkBuffers = {
      std::vector<std::uint8_t>(128 * 4, 1), std::vector<std::uint8_t>(128 * 4)};
  CollectingSink sink;
  interp::InterpOptions sinkOpts;
  sinkOpts.captureGlobalTrace = true;
  sinkOpts.traceSink = &sink;
  const interp::InterpResult streamed =
      interp::runKernel(fn, range, args, sinkBuffers, sinkOpts);
  ASSERT_TRUE(streamed.ok) << streamed.error;
  EXPECT_TRUE(streamed.trace.empty());

  ASSERT_EQ(sink.events.size(), material.trace.size());
  for (std::size_t i = 0; i < sink.events.size(); ++i) {
    EXPECT_EQ(sink.events[i].workItem, material.trace[i].workItem) << i;
    EXPECT_EQ(sink.events[i].buffer, material.trace[i].buffer) << i;
    EXPECT_EQ(sink.events[i].offset, material.trace[i].offset) << i;
    EXPECT_EQ(sink.events[i].size, material.trace[i].size) << i;
    EXPECT_EQ(sink.events[i].isWrite, material.trace[i].isWrite) << i;
  }

  // buffersWritten: `a` is only read, `b` is written.
  ASSERT_EQ(streamed.buffersWritten.size(), 2u);
  EXPECT_EQ(streamed.buffersWritten[0], 0);
  EXPECT_EQ(streamed.buffersWritten[1], 1);
}

// ---------------------------------------------------------------------------
// Skip-ahead observability counters
// ---------------------------------------------------------------------------

// A barrier-mode kernel runs one lane per CU, so the fast engine must drain
// whole chains inline: the sim.events / sim.skip_ahead.* counters fire, and
// only for the fast engine.
TEST(SimEngineCounters, SkipAheadFiresOnBarrierModeKernel) {
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  auto program = compile(
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  __local float t[64];\n"
      "  t[get_local_id(0)] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[get_global_id(0)] = t[get_local_id(0)];\n"
      "}\n");
  ASSERT_TRUE(program);
  const ir::Function& fn = *program->module->functions().front();
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(512 * 4, 1), std::vector<std::uint8_t>(512 * 4)};
  const std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                               interp::KernelArg::buffer(1)};
  interp::NdRange range;
  range.global = {512, 1, 1};
  range.local = {64, 1, 1};
  const sim::SimInput input = sim::prepareSimInput(fn, range, args, buffers);
  ASSERT_TRUE(input.ok) << input.error;
  ASSERT_TRUE(input.hasBarriers);

  const std::uint64_t events0 = obs::counter("sim.events").value();
  const std::uint64_t chain0 = obs::counter("sim.skip_ahead.chain").value();
  const std::uint64_t issue0 = obs::counter("sim.skip_ahead.issue").value();

  const sim::SimResult fast = sim::simulate(input, model::Device::virtex7(),
                                            model::DesignPoint{});
  ASSERT_TRUE(fast.ok) << fast.error;
  EXPECT_GT(obs::counter("sim.events").value(), events0);
  EXPECT_GT(obs::counter("sim.skip_ahead.chain").value(), chain0);
  EXPECT_GT(obs::counter("sim.skip_ahead.issue").value(), issue0);

  // The reference engine publishes none of the fast-engine counters.
  const std::uint64_t events1 = obs::counter("sim.events").value();
  const std::uint64_t chain1 = obs::counter("sim.skip_ahead.chain").value();
  sim::SimOptions reference;
  reference.engine = sim::EngineKind::Reference;
  const sim::SimResult ref = sim::simulate(input, model::Device::virtex7(),
                                           model::DesignPoint{}, reference);
  ASSERT_TRUE(ref.ok) << ref.error;
  EXPECT_EQ(obs::counter("sim.events").value(), events1);
  EXPECT_EQ(obs::counter("sim.skip_ahead.chain").value(), chain1);
  expectBitIdentical(fast, ref, "barrier kernel fast vs reference");
  obs::setEnabled(wasEnabled);
}

}  // namespace
}  // namespace flexcl
