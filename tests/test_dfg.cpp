#include <gtest/gtest.h>

#include "cdfg/dfg.h"
#include "ir/lower.h"

namespace flexcl::cdfg {
namespace {

using ir::CompiledProgram;

std::unique_ptr<CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto c = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(c) << diags.str();
  return c;
}

const ir::BasicBlock* blockContaining(const ir::Function& fn, ir::Opcode op) {
  for (const auto& bb : fn.blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == op) return bb.get();
    }
  }
  return nullptr;
}

TEST(Dfg, RegisterDependenciesFormChain) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  float a = o[0];\n"
      "  float b = a * 2.0f;\n"
      "  float d = b + 1.0f;\n"
      "  o[1] = d;\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  const model::OpLatencyDb lat = model::OpLatencyDb::virtex7();
  const ir::BasicBlock* bb = blockContaining(*fn, ir::Opcode::FMul);
  ASSERT_NE(bb, nullptr);
  BlockDfg dfg = BlockDfg::build(*bb, lat);
  // Critical path must cover load -> fmul -> fadd -> store.
  const int loadLat = 1, mulLat = 5, addLat = 7;
  EXPECT_GE(dfg.criticalPathLength(), loadLat + mulLat + addLat);
}

TEST(Dfg, IndependentOpsDoNotDepend) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  float a = o[0] * 2.0f;\n"
      "  float b = o[1] * 3.0f;\n"
      "  o[2] = a;\n"
      "  o[3] = b;\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  const ir::BasicBlock* bb = blockContaining(*fn, ir::Opcode::FMul);
  BlockDfg dfg = BlockDfg::build(*bb, model::OpLatencyDb::virtex7());
  // Two independent chains: critical path is one chain, not the sum.
  int serial = 0;
  for (const DfgNode& n : dfg.nodes()) serial += n.latency;
  EXPECT_LT(dfg.criticalPathLength(), serial);
}

TEST(Dfg, StoreLoadOrderingOnSameBase) {
  auto c = compile(
      "__kernel void k(__global int* o) {\n"
      "  int tmp[4];\n"
      "  tmp[0] = o[0];\n"
      "  int v = tmp[0];\n"
      "  o[1] = v;\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  const ir::BasicBlock* bb = blockContaining(*fn, ir::Opcode::Store);
  BlockDfg dfg = BlockDfg::build(*bb, model::OpLatencyDb::virtex7());
  // Find the private store and private load of tmp; there must be a
  // dependence path from store to load.
  int storeIdx = -1, loadIdx = -1;
  const auto& nodes = dfg.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const ir::Instruction* inst = nodes[i].inst;
    if (inst->opcode() == ir::Opcode::Store &&
        inst->memSpace == ir::AddressSpace::Private &&
        memoryBaseOf(inst->operand(1)).kind == MemoryBase::Kind::Alloca) {
      // Looking for the array store (value came from the global load).
      if (storeIdx < 0) storeIdx = static_cast<int>(i);
    }
    if (inst->opcode() == ir::Opcode::Load &&
        inst->memSpace == ir::AddressSpace::Private && storeIdx >= 0 &&
        static_cast<int>(i) > storeIdx) {
      loadIdx = static_cast<int>(i);
    }
  }
  ASSERT_GE(storeIdx, 0);
  ASSERT_GE(loadIdx, 0);
  // BFS from storeIdx over succs.
  std::vector<bool> seen(nodes.size(), false);
  std::vector<int> stack = {storeIdx};
  bool reached = false;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    if (n == loadIdx) {
      reached = true;
      break;
    }
    if (seen[static_cast<std::size_t>(n)]) continue;
    seen[static_cast<std::size_t>(n)] = true;
    for (int s : nodes[static_cast<std::size_t>(n)].succs) stack.push_back(s);
  }
  EXPECT_TRUE(reached);
}

TEST(Dfg, MemoryBaseWalksPtrAddChains) {
  auto c = compile(
      "__kernel void k(__global float* data) {\n"
      "  int i = get_global_id(0);\n"
      "  data[i * 4 + 1] = 2.0f;\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  for (const auto& bb : fn->blocks()) {
    for (const ir::Instruction* inst : bb->instructions()) {
      if (inst->opcode() == ir::Opcode::Store &&
          inst->memSpace == ir::AddressSpace::Global) {
        MemoryBase base = memoryBaseOf(inst->operand(1));
        EXPECT_EQ(base.kind, MemoryBase::Kind::Argument);
        EXPECT_EQ(base.value->name(), "data");
        return;
      }
    }
  }
  FAIL() << "global store not found";
}

TEST(Dfg, ResourceTotalsCountPorts) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  __local float t[64];\n"
      "  int i = get_local_id(0);\n"
      "  t[i] = o[i];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  o[i] = t[63 - i] + t[i];\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  int localReads = 0, localWrites = 0;
  for (const auto& bb : fn->blocks()) {
    BlockDfg dfg = BlockDfg::build(*bb, model::OpLatencyDb::virtex7());
    localReads += dfg.totalUnits(sched::ResourceClass::LocalRead);
    localWrites += dfg.totalUnits(sched::ResourceClass::LocalWrite);
  }
  EXPECT_EQ(localReads, 2);
  EXPECT_EQ(localWrites, 1);
}

TEST(Dfg, BarrierFencesMemoryAccesses) {
  // Within a single block (straight-line code), accesses to two different
  // local arrays are independent — but a barrier between them orders them.
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  __local float a[8];\n"
      "  __local float b[8];\n"
      "  int i = get_local_id(0);\n"
      "  a[i] = o[i];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  b[i] = a[7 - i];\n"
      "  o[i] = b[i];\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");
  const ir::BasicBlock* bb = blockContaining(*fn, ir::Opcode::Barrier);
  BlockDfg dfg = BlockDfg::build(*bb, model::OpLatencyDb::virtex7());
  int barrierIdx = -1;
  for (std::size_t i = 0; i < dfg.nodes().size(); ++i) {
    if (dfg.nodes()[i].inst->opcode() == ir::Opcode::Barrier) {
      barrierIdx = static_cast<int>(i);
    }
  }
  ASSERT_GE(barrierIdx, 0);
  const auto bi = static_cast<std::size_t>(barrierIdx);
  EXPECT_FALSE(dfg.nodes()[bi].preds.empty());
  EXPECT_FALSE(dfg.nodes()[bi].succs.empty());
}

}  // namespace
}  // namespace flexcl::cdfg
