#include <gtest/gtest.h>

#include "cdfg/cdfg.h"
#include "ir/lower.h"

namespace flexcl::cdfg {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto c = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(c) << diags.str();
  return c;
}

KernelAnalysis analyze(const ir::Function& fn,
                       const interp::KernelProfile* profile = nullptr) {
  return analyzeKernel(fn, model::OpLatencyDb::virtex7(), sched::ResourceBudget{},
                       profile);
}

TEST(Cdfg, WorkItemLatencyCoversCriticalChain) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  float x = o[0];\n"
      "  o[1] = sqrt(x * x + 1.0f);\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  // load(1) + fmul(5) + fadd(7) + sqrt(14) + store(1) along the chain.
  EXPECT_GE(a.totals.latency, 1 + 5 + 7 + 14 + 1);
  EXPECT_EQ(a.totals.globalReads, 1);
  EXPECT_EQ(a.totals.globalWrites, 1);
}

TEST(Cdfg, LoopWeightsTotalsByTripCount) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  float acc = 0.0f;\n"
      "  for (int i = 0; i < 10; i++) { acc += o[i]; }\n"
      "  o[0] = acc;\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  // 10 loads inside the loop + 1 store.
  EXPECT_NEAR(a.totals.globalReads, 10.0, 0.01);
  EXPECT_NEAR(a.totals.globalWrites, 1.0, 0.01);
}

TEST(Cdfg, IndependentStatementsOverlap) {
  auto serialSrc =
      "__kernel void k(__global float* o) {\n"
      "  float a = o[0] / 1.5f;\n"
      "  float b = a / 2.5f;\n"
      "  o[1] = b;\n"
      "}\n";
  auto parallelSrc =
      "__kernel void k(__global float* o) {\n"
      "  float a = o[0] / 1.5f;\n"
      "  float b = o[2] / 2.5f;\n"
      "  o[1] = a + b;\n"
      "}\n";
  auto cs = compile(serialSrc);
  auto cp = compile(parallelSrc);
  KernelAnalysis serial = analyze(*cs->module->findFunction("k"));
  KernelAnalysis parallel = analyze(*cp->module->findFunction("k"));
  // Dependent divides chain; independent ones overlap (same op mix plus one
  // extra add/load but two overlapped divides).
  EXPECT_LT(parallel.totals.latency, serial.totals.latency + 10);
}

TEST(Cdfg, IfTakesMaxOfBranches) {
  auto c = compile(
      "__kernel void k(__global float* o, int n) {\n"
      "  float v;\n"
      "  if (n > 0) { v = o[0] / 3.0f; }\n"
      "  else { v = o[1] + 1.0f; }\n"
      "  o[2] = v;\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  // Latency includes the slow branch (fdiv 14) but not the sum of both.
  EXPECT_GE(a.totals.latency, 14);
  // Both branches' accesses appear in the element-wise max: each branch has
  // exactly one read, so the max is 1 (plus the final store elsewhere).
  EXPECT_NEAR(a.totals.globalWrites, 1.0, 0.01);
}

TEST(Cdfg, BarrierCounted) {
  auto c = compile(
      "__kernel void k(__global int* o) {\n"
      "  __local int t[16];\n"
      "  t[get_local_id(0)] = o[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  o[get_global_id(0)] = t[0];\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  EXPECT_EQ(a.barrierCount, 1);
  EXPECT_NEAR(a.totals.localReads, 1.0, 0.01);
  EXPECT_NEAR(a.totals.localWrites, 1.0, 0.01);
}

TEST(Cdfg, PipelineGraphCoversTopLevelOps) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  int i = get_global_id(0);\n"
      "  o[i] = o[i] * 2.0f;\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  EXPECT_FALSE(a.pipeline.nodes.empty());
  // Every pipeline edge references valid nodes.
  for (const sched::PipeEdge& e : a.pipeline.edges) {
    EXPECT_GE(e.from, 0);
    EXPECT_LT(e.from, static_cast<int>(a.pipeline.nodes.size()));
    EXPECT_GE(e.to, 0);
    EXPECT_LT(e.to, static_cast<int>(a.pipeline.nodes.size()));
    EXPECT_GE(e.distance, 0);
  }
}

TEST(Cdfg, LoopBecomesBlockingSupernode) {
  auto c = compile(
      "__kernel void k(__global float* o, int n) {\n"
      "  float acc = 0.0f;\n"
      "  for (int i = 0; i < 8; i++) { acc += o[i] * 1.5f; }\n"
      "  o[0] = acc;\n"
      "}\n");
  KernelAnalysis a = analyze(*c->module->findFunction("k"));
  bool foundEngine = false;
  for (const sched::PipeNode& n : a.pipeline.nodes) {
    if (n.resource.rc == sched::ResourceClass::LoopEngine) {
      foundEngine = true;
      EXPECT_GT(n.blockingCycles, 1);
      EXPECT_EQ(n.blockingCycles, n.latency);
    }
  }
  EXPECT_TRUE(foundEngine);
}

TEST(Cdfg, TripCountsPreferStaticThenProfileThenFallback) {
  auto c = compile(
      "__kernel void k(__global int* o, int n) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 32; i++) { s += i; }\n"       // static 32
      "  for (int i = 0; i < n; i++) { s += o[i]; }\n"      // dynamic
      "  o[0] = s;\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");

  // No profile: fallback covers the dynamic loop.
  TripCountOptions opts;
  opts.fallbackTripCount = 7.0;
  std::vector<double> noProfile = resolveTripCounts(*fn, nullptr, opts);
  ASSERT_EQ(noProfile.size(), 2u);
  EXPECT_DOUBLE_EQ(noProfile[0], 32.0);
  EXPECT_DOUBLE_EQ(noProfile[1], 7.0);

  // With a profile: the dynamic loop takes the measured count.
  interp::KernelProfile profile;
  profile.ok = true;
  profile.loopTripCounts = {32.0, 19.0};
  std::vector<double> withProfile = resolveTripCounts(*fn, &profile, opts);
  EXPECT_DOUBLE_EQ(withProfile[0], 32.0);
  EXPECT_DOUBLE_EQ(withProfile[1], 19.0);
}

TEST(Cdfg, CrossWorkItemDependenceProducesRecurrence) {
  // Work-item i reads what work-item i-1 wrote through local memory:
  // a distance-1 recurrence must appear in the pipeline graph (Figure 3).
  auto c = compile(
      "__kernel void k(__global int* in, __global int* out) {\n"
      "  __local int B[64];\n"
      "  int tid = get_local_id(0);\n"
      "  int prev = 0;\n"
      "  if (tid > 0) { prev = B[tid - 1]; }\n"
      "  B[tid] = in[get_global_id(0)] + prev;\n"
      "  out[get_global_id(0)] = B[tid];\n"
      "}\n");
  const ir::Function* fn = c->module->findFunction("k");

  // Profile to get the local trace (sequential round-robin execution means
  // wi i's read of B[i-1] happens after wi i-1's write).
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(64 * 4, 1), std::vector<std::uint8_t>(64 * 4)};
  interp::NdRange range;
  range.global = {64, 1, 1};
  range.local = {64, 1, 1};
  interp::KernelProfile profile = interp::profileKernel(
      *fn, range, {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)},
      buffers);
  ASSERT_TRUE(profile.ok) << profile.error;
  EXPECT_FALSE(profile.localTrace.empty());

  KernelAnalysis a = analyze(*fn, &profile);
  bool foundRecurrence = false;
  for (const sched::PipeEdge& e : a.pipeline.edges) {
    if (e.distance >= 1) foundRecurrence = true;
  }
  EXPECT_TRUE(foundRecurrence);
  // And it must raise RecMII above the trivial 1.
  EXPECT_GT(sched::computeRecMII(a.pipeline), 1);
}

TEST(Cdfg, UnrollHintReducesLoopLatency) {
  auto base = compile(
      "__kernel void k(__global float* o) {\n"
      "  float acc = 0.0f;\n"
      "  for (int i = 0; i < 64; i++) { acc += o[i]; }\n"
      "  o[0] = acc;\n"
      "}\n");
  auto unrolled = compile(
      "__kernel void k(__global float* o) {\n"
      "  float acc = 0.0f;\n"
      "#pragma unroll 8\n"
      "  for (int i = 0; i < 64; i++) { acc += o[i]; }\n"
      "  o[0] = acc;\n"
      "}\n");
  KernelAnalysis a = analyze(*base->module->findFunction("k"));
  KernelAnalysis b = analyze(*unrolled->module->findFunction("k"));
  EXPECT_LT(b.totals.latency, a.totals.latency);
}

}  // namespace
}  // namespace flexcl::cdfg
