// Static analysis subsystem tests: symbolic walker, per-pass golden
// diagnostics, static-vs-profiled pattern cross-check, feasibility verdicts
// and the explorer's feasibility pruning.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "analysis/analyze.h"
#include "dse/explorer.h"
#include "ir/builder.h"
#include "ir/lower.h"
#include "ir/verifier.h"

namespace flexcl::analysis {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

const ir::Function* fnOf(const ir::CompiledProgram& p, const std::string& name) {
  const ir::Function* fn = p.module->findFunction(name);
  EXPECT_NE(fn, nullptr);
  return fn;
}

std::vector<const LintFinding*> findingsWithRule(const LintReport& report,
                                                 const std::string& rule) {
  std::vector<const LintFinding*> out;
  for (const auto& f : report.findings) {
    if (f.rule == rule) out.push_back(&f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Symbolic walker
// ---------------------------------------------------------------------------

TEST(Symbolic, StreamingKernelOffsetsAreAffineInGlobalId) {
  auto p = compile(
      "__kernel void vadd(__global const float* a, __global const float* b,\n"
      "                   __global float* c, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i] + b[i];\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "vadd"));

  ASSERT_EQ(summary.globalAccessCount(), 3u);
  SymBinding bind;
  bind.globalId = {7, 0, 0};
  int writes = 0;
  for (const auto& a : summary.accesses) {
    EXPECT_EQ(a.base, PtrBase::BufferArg);
    EXPECT_GE(a.baseIndex, 0);
    EXPECT_LE(a.baseIndex, 2);
    EXPECT_FALSE(a.divergent);
    auto v = symEval(a.offset.get(), bind);
    ASSERT_TRUE(v.has_value()) << symStr(a.offset.get());
    EXPECT_EQ(*v, 7 * 4);  // float at index gid0
    writes += a.isWrite ? 1 : 0;
  }
  EXPECT_EQ(writes, 1);
}

TEST(Symbolic, ConstantTripLoopInductionIsRecognized) {
  auto p = compile(
      "__kernel void tile(__global const float* a, __global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < 8; ++i) s += a[gid * 8 + i];\n"
      "  out[gid] = s;\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "tile"));

  ASSERT_EQ(summary.loops.size(), 1u);
  EXPECT_EQ(summary.loops[0].staticTrip, 8);

  // The load offset must be affine in both gid0 and the loop counter:
  // (gid*8 + i) * 4 bytes.
  const MemAccessInfo* load = nullptr;
  for (const auto& a : summary.accesses) {
    if (!a.isWrite) load = &a;
  }
  ASSERT_NE(load, nullptr);
  EXPECT_TRUE(symMentions(load->offset.get(), Sym::LoopIter))
      << symStr(load->offset.get());
  SymBinding bind;
  bind.globalId = {2, 0, 0};
  bind.loopIters[summary.loops[0].loopId] = 3;
  auto v = symEval(load->offset.get(), bind);
  ASSERT_TRUE(v.has_value()) << symStr(load->offset.get());
  EXPECT_EQ(*v, (2 * 8 + 3) * 4);
}

TEST(Symbolic, IndirectAccessIsOpaqueNotMisclassified) {
  auto p = compile(
      "__kernel void gather(__global const int* idx, __global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  out[idx[gid]] = 1.0f;\n"
      "}\n");
  const KernelSummary summary = summarizeKernel(*fnOf(*p, "gather"));

  const MemAccessInfo* store = nullptr;
  const MemAccessInfo* load = nullptr;
  for (const auto& a : summary.accesses) {
    (a.isWrite ? store : load) = &a;
  }
  ASSERT_NE(load, nullptr);
  ASSERT_NE(store, nullptr);
  EXPECT_FALSE(symIsOpaque(load->offset.get()));
  // The store offset depends on loaded data: must be opaque, never a guess.
  EXPECT_TRUE(symIsOpaque(store->offset.get()));
}

// ---------------------------------------------------------------------------
// Lint passes: golden diagnostics
// ---------------------------------------------------------------------------

TEST(LintPasses, CleanKernelProducesNoFindings) {
  auto p = compile(
      "__kernel void vadd(__global const float* a, __global float* c) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i];\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "vadd"));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.kernelName, "vadd");
  EXPECT_EQ(report.globalAccessSites, 2u);
  EXPECT_FALSE(report.usesBarrier);
  EXPECT_FALSE(report.hasErrors());
}

TEST(LintPasses, UnresolvedTripCountIsWarned) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out, int n) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < n; ++i) s += a[i];\n"
      "  out[get_global_id(0)] = s;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  const auto found = findingsWithRule(report, "unresolved-trip-count");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->pass, "trip-count");
  EXPECT_EQ(found[0]->severity, DiagSeverity::Warning);
  EXPECT_EQ(report.loopCount, 1u);
  EXPECT_EQ(report.unresolvedTripLoops, 1u);
}

TEST(LintPasses, ConstantTripLoopIsNotWarned) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  float s = 0.0f;\n"
      "  for (int i = 0; i < 16; ++i) s += a[i];\n"
      "  out[get_global_id(0)] = s;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  EXPECT_TRUE(findingsWithRule(report, "unresolved-trip-count").empty());
  EXPECT_EQ(report.loopCount, 1u);
  EXPECT_EQ(report.unresolvedTripLoops, 0u);
}

TEST(LintPasses, BarrierUnderDivergentControlFlowIsWarned) {
  auto p = compile(
      "__kernel void k(__global float* out) {\n"
      "  int lid = get_local_id(0);\n"
      "  if (lid < 4) barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = 1.0f;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  const auto found = findingsWithRule(report, "barrier-divergence");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->pass, "barrier");
  EXPECT_EQ(found[0]->severity, DiagSeverity::Warning);
  EXPECT_TRUE(report.usesBarrier);
}

TEST(LintPasses, UniformBarrierIsNotWarned) {
  auto p = compile(
      "__kernel void k(__global float* out, __local float* tmp) {\n"
      "  tmp[get_local_id(0)] = 1.0f;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = tmp[get_local_id(0)];\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  EXPECT_TRUE(findingsWithRule(report, "barrier-divergence").empty());
  EXPECT_TRUE(report.usesBarrier);
}

// Uniformity tier 2: `gid - lid` is the group base — the local-id
// contributions cancel, so every work-item of a group computes the same
// condition value and the barrier cannot diverge.
TEST(LintPasses, GroupBaseConditionDischargesBarrierDivergence) {
  auto p = compile(
      "__kernel void k(__global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  int lid = get_local_id(0);\n"
      "  if (gid - lid < 32) barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[gid] = 1.0f;\n"
      "}\n");
  const interp::NdRange range{{64, 1, 1}, {16, 1, 1}};
  LintOptions opts;
  opts.range = &range;
  opts.profileCrossCheck = false;
  const LintReport report = runLintPasses(*fnOf(*p, "k"), opts);
  EXPECT_TRUE(findingsWithRule(report, "barrier-divergence").empty());
  const auto discharged = findingsWithRule(report, "provably-uniform-branch");
  ASSERT_EQ(discharged.size(), 1u);
  EXPECT_EQ(discharged[0]->pass, "uniform-branch");
  EXPECT_EQ(discharged[0]->severity, DiagSeverity::Note);
}

// Uniformity tier 3 (per-group sweep): `gid < 32` with 16-wide groups splits
// exactly on a group boundary — uniform for this geometry, divergent for a
// threshold that falls inside a group.
TEST(LintPasses, GroupAlignedThresholdDischargesOnlyWhenAligned) {
  const char* src =
      "__kernel void k(__global float* out) {\n"
      "  int gid = get_global_id(0);\n"
      "  if (gid < %d) barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[gid] = 1.0f;\n"
      "}\n";
  const interp::NdRange range{{64, 1, 1}, {16, 1, 1}};
  LintOptions opts;
  opts.range = &range;
  opts.profileCrossCheck = false;

  char aligned[256];
  std::snprintf(aligned, sizeof(aligned), src, 32);
  auto pa = compile(aligned);
  const LintReport ra = runLintPasses(*fnOf(*pa, "k"), opts);
  EXPECT_TRUE(findingsWithRule(ra, "barrier-divergence").empty());
  EXPECT_EQ(findingsWithRule(ra, "provably-uniform-branch").size(), 1u);

  char misaligned[256];
  std::snprintf(misaligned, sizeof(misaligned), src, 40);  // mid-group
  auto pm = compile(misaligned);
  const LintReport rm = runLintPasses(*fnOf(*pm, "k"), opts);
  EXPECT_EQ(findingsWithRule(rm, "barrier-divergence").size(), 1u);
  EXPECT_TRUE(findingsWithRule(rm, "provably-uniform-branch").empty());
}

// The Figure 3 shape: work-item t+1 reads the local cell work-item t wrote.
TEST(LintPasses, CrossWorkItemLocalDependenceIsDetected) {
  auto p = compile(
      "__kernel void scan(__global const float* in, __global float* out,\n"
      "                   __local float* B) {\n"
      "  int tid = get_local_id(0);\n"
      "  int gid = get_global_id(0);\n"
      "  B[tid] = in[gid];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  float v = B[tid];\n"
      "  if (tid > 0) v += B[tid - 1];\n"
      "  out[gid] = v;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "scan"));
  const auto found = findingsWithRule(report, "cross-wi-dependence");
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->pass, "local-dependence");
  ASSERT_EQ(report.crossWiDeps.size(), 1u);
  EXPECT_EQ(report.crossWiDeps[0].distance, 1);
}

TEST(LintPasses, PrivateLocalUseWithoutRecurrenceIsClean) {
  auto p = compile(
      "__kernel void k(__global const float* in, __global float* out,\n"
      "                __local float* B) {\n"
      "  int tid = get_local_id(0);\n"
      "  B[tid] = in[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = B[tid] * 2.0f;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  EXPECT_TRUE(findingsWithRule(report, "cross-wi-dependence").empty());
  EXPECT_TRUE(report.crossWiDeps.empty());
}

TEST(LintPasses, IndirectAccessGetsUnclassifiedNote) {
  auto p = compile(
      "__kernel void gather(__global const int* idx, __global float* out) {\n"
      "  out[idx[get_global_id(0)]] = 1.0f;\n"
      "}\n");
  interp::NdRange range;
  range.global = {64, 1, 1};
  range.local = {32, 1, 1};
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  LintOptions opts;
  opts.range = &range;
  opts.args = &args;
  const LintReport report = runLintPasses(*fnOf(*p, "gather"), opts);
  const auto notes = findingsWithRule(report, "unclassified-access");
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0]->severity, DiagSeverity::Note);
  EXPECT_EQ(report.globalAccessSites, 2u);
  EXPECT_EQ(report.classifiedSites, 1u);  // the idx load
}

// ---------------------------------------------------------------------------
// Static vs profiled cross-check
// ---------------------------------------------------------------------------

LintReport lintWithProfile(const ir::Function& fn,
                           const std::array<std::uint64_t, 3>& global,
                           const std::array<std::uint64_t, 3>& local,
                           std::vector<interp::KernelArg> args,
                           std::vector<std::vector<std::uint8_t>> buffers) {
  interp::NdRange range;
  range.global = global;
  range.local = local;
  LintOptions opts;
  opts.range = &range;
  opts.args = &args;
  opts.buffers = &buffers;
  return runLintPasses(fn, opts);
}

TEST(PatternCrossCheck, StreamingKernelAgreesFully) {
  auto p = compile(
      "__kernel void vadd(__global const float* a, __global const float* b,\n"
      "                   __global float* c) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i] + b[i];\n"
      "}\n");
  const LintReport report = lintWithProfile(
      *fnOf(*p, "vadd"), {256, 1, 1}, {64, 1, 1},
      {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1),
       interp::KernelArg::buffer(2)},
      {std::vector<std::uint8_t>(256 * 4, 1), std::vector<std::uint8_t>(256 * 4, 1),
       std::vector<std::uint8_t>(256 * 4)});
  ASSERT_TRUE(report.crossChecked);
  EXPECT_EQ(report.patterns.agreement, 1.0);
  EXPECT_TRUE(report.patterns.divergences.empty());
  EXPECT_GT(report.patterns.profiledStreamEvents, 0u);
  EXPECT_EQ(report.classifiedSites, 3u);
  EXPECT_TRUE(findingsWithRule(report, "pattern-divergence").empty());
}

TEST(PatternCrossCheck, ScalarArgAndLoopOffsetsAgree) {
  auto p = compile(
      "__kernel void rowsum(__global const float* a, __global float* out,\n"
      "                     int width) {\n"
      "  int row = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int c = 0; c < width; ++c) s += a[row * width + c];\n"
      "  out[row] = s;\n"
      "}\n");
  const LintReport report = lintWithProfile(
      *fnOf(*p, "rowsum"), {32, 1, 1}, {8, 1, 1},
      {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1),
       interp::KernelArg::intScalar(16)},
      {std::vector<std::uint8_t>(32 * 16 * 4, 1),
       std::vector<std::uint8_t>(32 * 4)});
  ASSERT_TRUE(report.crossChecked);
  EXPECT_EQ(report.patterns.agreement, 1.0)
      << renderText(report);
  EXPECT_TRUE(report.patterns.divergences.empty());
  // Trip count resolves through the scalar-arg binding, so nothing is opaque.
  EXPECT_EQ(report.classifiedSites, report.globalAccessSites);
}

// ---------------------------------------------------------------------------
// Verifier findings surface through the lint pipeline
// ---------------------------------------------------------------------------

/// Hand-rolled function shell for verifier negative tests.
struct IrHarness {
  ir::TypeContext ctx;
  ir::Module module{ctx};
  ir::Function* fn = nullptr;
  ir::BasicBlock* entry = nullptr;
  ir::IRBuilder builder;

  IrHarness() : builder(*(fn = module.createFunction("t", ctx.voidType()))) {
    entry = fn->createBlock("entry");
    builder.setInsertBlock(entry);
  }

  void finalize() {
    auto root = std::make_unique<ir::Region>();
    root->kind = ir::Region::Kind::Seq;
    fn->setRootRegion(std::move(root));
    fn->renumber();
  }
};

TEST(VerifierPass, UseBeforeDefIsALintError) {
  IrHarness h;
  ir::Value* c1 = h.fn->intConstant(h.ctx.i32(), 1);
  ir::Instruction* lateDef =
      h.fn->createInstruction(ir::Opcode::Add, h.ctx.i32());
  lateDef->addOperand(c1);
  lateDef->addOperand(c1);
  ir::Instruction* use = h.fn->createInstruction(ir::Opcode::Add, h.ctx.i32());
  use->addOperand(lateDef);  // defined below the use
  use->addOperand(c1);
  h.entry->append(use);
  h.entry->append(lateDef);
  h.builder.ret(nullptr);
  h.finalize();

  const LintReport report = runLintPasses(*h.fn);
  const auto found = findingsWithRule(report, "def-before-use");
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0]->pass, "verifier");
  EXPECT_EQ(found[0]->severity, DiagSeverity::Error);
  EXPECT_TRUE(report.hasErrors());

  // Lint errors make every design point infeasible.
  model::DesignPoint dp;
  const Feasibility f = checkDesign(report, dp);
  EXPECT_FALSE(f.feasible);
  EXPECT_FALSE(f.reason.empty());
}

TEST(VerifierPass, MixedWidthArithmeticIsATypeConsistencyWarning) {
  IrHarness h;
  ir::Instruction* add = h.fn->createInstruction(ir::Opcode::Add, h.ctx.i32());
  add->addOperand(h.fn->intConstant(h.ctx.i32(), 1));
  add->addOperand(h.fn->intConstant(h.ctx.i64(), 2));
  h.entry->append(add);
  h.builder.ret(nullptr);
  h.finalize();

  const LintReport report = runLintPasses(*h.fn);
  const auto found = findingsWithRule(report, "type-consistency");
  ASSERT_FALSE(found.empty());
  EXPECT_EQ(found[0]->severity, DiagSeverity::Warning);
  EXPECT_FALSE(report.hasErrors());  // warning only: still feasible
  model::DesignPoint dp;
  EXPECT_TRUE(checkDesign(report, dp).feasible);
}

TEST(VerifierPass, MalformedRegionTreeIsReported) {
  IrHarness h;
  h.builder.ret(nullptr);
  auto root = std::make_unique<ir::Region>();
  root->kind = ir::Region::Kind::Loop;
  root->loopId = 5;  // out of range: fn->loopCount == 0
  h.fn->setRootRegion(std::move(root));
  h.fn->renumber();

  bool sawRegionIssue = false;
  for (const auto& issue : ir::verifyFunctionIssues(*h.fn)) {
    if (issue.rule == "region-tree") sawRegionIssue = true;
  }
  EXPECT_TRUE(sawRegionIssue);
}

// ---------------------------------------------------------------------------
// Feasibility verdicts
// ---------------------------------------------------------------------------

TEST(Feasibility, ReqdWorkGroupSizeIsCapturedAndEnforced) {
  auto p = compile(
      "__attribute__((reqd_work_group_size(64, 1, 1)))\n"
      "__kernel void k(__global float* out) {\n"
      "  out[get_global_id(0)] = 1.0f;\n"
      "}\n");
  const LintReport report = runLintPasses(*fnOf(*p, "k"));
  EXPECT_EQ(report.reqdWorkGroupSize[0], 64u);

  model::DesignPoint ok;
  ok.workGroupSize = {64, 1, 1};
  EXPECT_TRUE(checkDesign(report, ok).feasible);

  model::DesignPoint bad;
  bad.workGroupSize = {32, 1, 1};
  const Feasibility f = checkDesign(report, bad);
  EXPECT_FALSE(f.feasible);
  EXPECT_NE(f.reason.find("reqd_work_group_size"), std::string::npos);
}

TEST(Feasibility, PipelinePointsWithCrossWiDependenceAreRecMiiBound) {
  LintReport report;
  report.crossWiDeps.push_back({10, 20, 1, {}});

  model::DesignPoint pipeline;
  pipeline.commMode = model::CommMode::Pipeline;
  const Feasibility fp = checkDesign(report, pipeline);
  EXPECT_TRUE(fp.feasible);  // evaluated, but annotated
  EXPECT_TRUE(fp.recMiiBound);
  EXPECT_FALSE(fp.reason.empty());

  model::DesignPoint barrier;
  barrier.commMode = model::CommMode::Barrier;
  const Feasibility fb = checkDesign(report, barrier);
  EXPECT_TRUE(fb.feasible);
  EXPECT_FALSE(fb.recMiiBound);
}

// ---------------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------------

TEST(Report, TextAndJsonRenderings) {
  auto p = compile(
      "__kernel void vadd(__global const float* a, __global float* c) {\n"
      "  int i = get_global_id(0);\n"
      "  c[i] = a[i];\n"
      "}\n");
  const LintReport report = lintWithProfile(
      *fnOf(*p, "vadd"), {128, 1, 1}, {32, 1, 1},
      {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)},
      {std::vector<std::uint8_t>(128 * 4, 1), std::vector<std::uint8_t>(128 * 4)});

  const std::string text = renderText(report);
  EXPECT_NE(text.find("lint report for kernel 'vadd'"), std::string::npos);
  EXPECT_NE(text.find("cross-check"), std::string::npos);

  const std::string json = renderJson(report);
  EXPECT_NE(json.find("\"kernel\":\"vadd\""), std::string::npos);
  EXPECT_NE(json.find("\"crossCheck\""), std::string::npos);
  EXPECT_NE(json.find("\"agreement\""), std::string::npos);
  EXPECT_NE(json.find("\"findings\""), std::string::npos);
  // Balanced braces as a cheap well-formedness proxy.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, JsonSchemaVersionAndKeyOrderArePinned) {
  // Full-string golden over a synthetic report: schema_version leads and the
  // key order is fixed. A change here is a schema change — bump
  // kLintSchemaVersion and update the README alongside this string.
  LintReport report;
  report.kernelName = "k";
  LintFinding f;
  f.pass = "trip-count";
  f.rule = "unresolved-trip-count";
  f.severity = DiagSeverity::Warning;
  f.loc.line = 3;
  f.loc.column = 7;
  f.message = "loop 0 trip count unresolved";
  f.loopId = 0;
  report.findings.push_back(f);
  report.loopCount = 1;
  report.unresolvedTripLoops = 1;
  report.globalAccessSites = 2;
  report.classifiedSites = 2;

  EXPECT_EQ(renderJson(report),
            "{\"schema_version\":4,\"kernel\":\"k\",\"errors\":0,"
            "\"warnings\":1,\"findings\":[{\"pass\":\"trip-count\","
            "\"rule\":\"unresolved-trip-count\",\"severity\":\"warning\","
            "\"line\":3,\"column\":7,"
            "\"message\":\"loop 0 trip count unresolved\",\"loop\":0}],"
            "\"loops\":{\"total\":1,\"unresolvedTrip\":1},"
            "\"accessSites\":{\"global\":2,\"classified\":2},"
            "\"patterns\":[],\"crossCheck\":null,\"crossWiDependences\":[],"
            "\"accessBounds\":[],\"reqdWorkGroupSize\":[0,0,0],"
            "\"usesBarrier\":false,\"staticProfile\":null,\"race\":null}");

  // With a verdict attached the nullable object renders with a fixed key
  // order of its own.
  report.staticProfileVerdict = "approximate";
  report.staticProfileReason = "data-dependent branch";
  const std::string json = renderJson(report);
  EXPECT_NE(json.find("\"staticProfile\":{\"verdict\":\"approximate\","
                      "\"reason\":\"data-dependent branch\"}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Explorer feasibility pruning
// ---------------------------------------------------------------------------

TEST(ExplorerLint, SkipsStaticallyInfeasiblePointsAndPreservesTheRest) {
  auto p = compile(
      "__attribute__((reqd_work_group_size(64, 1, 1)))\n"
      "__kernel void k(__global const float* a, __global float* b) {\n"
      "  int i = get_global_id(0);\n"
      "  b[i] = a[i] * 2.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(128 * 4, 1), std::vector<std::uint8_t>(128 * 4)};
  model::LaunchInfo launch;
  launch.fn = fn;
  launch.range.global = {128, 1, 1};
  launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
  launch.buffers = &buffers;
  model::FlexCl flexcl(model::Device::virtex7());

  std::vector<model::DesignPoint> space(2);
  space[0].workGroupSize = {32, 1, 1};  // violates reqd_work_group_size
  space[1].workGroupSize = {64, 1, 1};

  const LintReport lint = runLintPasses(*fn);

  dse::ExplorerOptions withLint;
  withLint.lint = &lint;
  dse::Explorer pruned(flexcl, launch, withLint);
  const dse::ExplorationResult r1 = pruned.explore(space);

  ASSERT_EQ(r1.designs.size(), 2u);
  EXPECT_EQ(r1.skippedCount, 1);
  EXPECT_TRUE(r1.designs[0].skipped);
  EXPECT_EQ(r1.designs[0].flexclCycles, 0.0);
  EXPECT_EQ(r1.designs[0].simCycles, 0.0);
  EXPECT_NE(r1.designs[0].infeasibleReason.find("reqd_work_group_size"),
            std::string::npos);
  EXPECT_FALSE(r1.designs[1].skipped);
  EXPECT_GT(r1.designs[1].flexclCycles, 0.0);

  // Without a lint report the explorer evaluates everything, and the shared
  // feasible point must come out bit-identical.
  dse::Explorer full(flexcl, launch, {});
  const dse::ExplorationResult r2 = full.explore(space);
  EXPECT_EQ(r2.skippedCount, 0);
  EXPECT_FALSE(r2.designs[0].skipped);
  EXPECT_GT(r2.designs[0].flexclCycles, 0.0);
  EXPECT_EQ(r1.designs[1].flexclCycles, r2.designs[1].flexclCycles);
  EXPECT_EQ(r1.designs[1].simCycles, r2.designs[1].simCycles);
  EXPECT_EQ(r1.designs[1].sdaccelCycles.has_value(),
            r2.designs[1].sdaccelCycles.has_value());

  // The pruned exploration's averages cover feasible points only.
  EXPECT_EQ(r1.avgFlexclErrorPct, r1.designs[1].flexclErrorPct());
}

}  // namespace
}  // namespace flexcl::analysis
