#include <gtest/gtest.h>

#include <cstring>

#include "interp/interpreter.h"
#include "interp/profiler.h"
#include "ir/lower.h"

namespace flexcl::interp {
namespace {

using ir::CompiledProgram;

std::unique_ptr<CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

std::vector<std::uint8_t> floatBuffer(const std::vector<float>& v) {
  std::vector<std::uint8_t> b(v.size() * 4);
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

std::vector<float> asFloats(const std::vector<std::uint8_t>& b) {
  std::vector<float> v(b.size() / 4);
  std::memcpy(v.data(), b.data(), b.size());
  return v;
}

std::vector<std::uint8_t> intBuffer(const std::vector<std::int32_t>& v) {
  std::vector<std::uint8_t> b(v.size() * 4);
  std::memcpy(b.data(), v.data(), b.size());
  return b;
}

std::vector<std::int32_t> asInts(const std::vector<std::uint8_t>& b) {
  std::vector<std::int32_t> v(b.size() / 4);
  std::memcpy(v.data(), b.data(), b.size());
  return v;
}

TEST(Interp, VectorAddMatchesReference) {
  auto c = compile(
      "__kernel void add(__global const float* a, __global const float* b,\n"
      "                  __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  out[i] = a[i] + b[i];\n"
      "}\n");
  const int n = 64;
  std::vector<float> a(n), b(n);
  for (int i = 0; i < n; ++i) {
    a[i] = static_cast<float>(i);
    b[i] = static_cast<float>(2 * i + 1);
  }
  std::vector<std::vector<std::uint8_t>> buffers = {floatBuffer(a), floatBuffer(b),
                                                    std::vector<std::uint8_t>(n * 4)};
  NdRange range;
  range.global = {n, 1, 1};
  range.local = {16, 1, 1};
  InterpOptions opts;
  opts.strictBounds = true;
  auto result = runKernel(*c->module->findFunction("add"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1),
                           KernelArg::buffer(2)},
                          buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[2]);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(out[i], a[i] + b[i]) << i;
}

TEST(Interp, ScalarArgAndLoop) {
  auto c = compile(
      "__kernel void scale(__global float* data, float factor, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  if (i < n) { data[i] = data[i] * factor; }\n"
      "}\n");
  const int n = 32;
  std::vector<float> data(n, 2.0f);
  std::vector<std::vector<std::uint8_t>> buffers = {floatBuffer(data)};
  NdRange range;
  range.global = {n, 1, 1};
  range.local = {8, 1, 1};
  InterpOptions opts;
  opts.strictBounds = true;
  auto result = runKernel(*c->module->findFunction("scale"), range,
                          {KernelArg::buffer(0), KernelArg::floatScalar(2.5),
                           KernelArg::intScalar(n)},
                          buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[0]);
  for (int i = 0; i < n; ++i) EXPECT_FLOAT_EQ(out[i], 5.0f);
}

TEST(Interp, LocalMemoryWithBarrierReverse) {
  // Reverses each work-group's slice through local memory; validates barrier
  // synchronisation and local addressing.
  auto c = compile(
      "__kernel void rev(__global int* data) {\n"
      "  __local int tile[16];\n"
      "  int l = get_local_id(0);\n"
      "  int g = get_global_id(0);\n"
      "  int base = get_group_id(0) * 16;\n"
      "  tile[l] = data[g];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  data[base + l] = tile[15 - l];\n"
      "}\n");
  const int n = 64;
  std::vector<std::int32_t> data(n);
  for (int i = 0; i < n; ++i) data[i] = i;
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer(data)};
  NdRange range;
  range.global = {n, 1, 1};
  range.local = {16, 1, 1};
  InterpOptions opts;
  opts.strictBounds = true;
  auto result =
      runKernel(*c->module->findFunction("rev"), range, {KernelArg::buffer(0)},
                buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asInts(buffers[0]);
  for (int g = 0; g < 4; ++g) {
    for (int l = 0; l < 16; ++l) {
      EXPECT_EQ(out[g * 16 + l], g * 16 + (15 - l));
    }
  }
}

TEST(Interp, ReductionLoopInsideKernel) {
  auto c = compile(
      "__kernel void rowsum(__global const float* m, __global float* out, int w) {\n"
      "  int r = get_global_id(0);\n"
      "  float acc = 0.0f;\n"
      "  for (int j = 0; j < w; j++) { acc += m[r * w + j]; }\n"
      "  out[r] = acc;\n"
      "}\n");
  const int rows = 8, w = 16;
  std::vector<float> m(rows * w);
  for (int i = 0; i < rows * w; ++i) m[i] = static_cast<float>(i % 7);
  std::vector<std::vector<std::uint8_t>> buffers = {
      floatBuffer(m), std::vector<std::uint8_t>(rows * 4)};
  NdRange range;
  range.global = {rows, 1, 1};
  range.local = {4, 1, 1};
  InterpOptions opts;
  opts.strictBounds = true;
  auto result = runKernel(*c->module->findFunction("rowsum"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1),
                           KernelArg::intScalar(w)},
                          buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[1]);
  for (int r = 0; r < rows; ++r) {
    float expect = 0;
    for (int j = 0; j < w; ++j) expect += m[r * w + j];
    EXPECT_FLOAT_EQ(out[r], expect) << r;
  }
}

TEST(Interp, MathBuiltins) {
  auto c = compile(
      "__kernel void m(__global float* x) {\n"
      "  int i = get_global_id(0);\n"
      "  x[i] = sqrt(x[i]) + fabs(-1.0f) + fmax(0.5f, 0.25f) + exp(0.0f);\n"
      "}\n");
  std::vector<float> x = {4.0f, 9.0f};
  std::vector<std::vector<std::uint8_t>> buffers = {floatBuffer(x)};
  NdRange range;
  range.global = {2, 1, 1};
  range.local = {1, 1, 1};
  auto result = runKernel(*c->module->findFunction("m"), range,
                          {KernelArg::buffer(0)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[0]);
  EXPECT_FLOAT_EQ(out[0], 2.0f + 1.0f + 0.5f + 1.0f);
  EXPECT_FLOAT_EQ(out[1], 3.0f + 1.0f + 0.5f + 1.0f);
}

TEST(Interp, IntegerOpsAndUnsignedCompare) {
  auto c = compile(
      "__kernel void iops(__global int* a, __global unsigned int* u) {\n"
      "  a[0] = 7 / 2; a[1] = 7 % 3; a[2] = -7 / 2; a[3] = 1 << 5;\n"
      "  a[4] = -8 >> 1; a[5] = 0xF0 & 0x1F; a[6] = 1 | 6; a[7] = 5 ^ 3;\n"
      "  unsigned int big = 0xFFFFFFF0u;\n"
      "  u[0] = big > 16u ? 1u : 0u;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {std::vector<std::uint8_t>(32),
                                                    std::vector<std::uint8_t>(4)};
  NdRange range;
  auto result = runKernel(*c->module->findFunction("iops"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  auto a = asInts(buffers[0]);
  EXPECT_EQ(a[0], 3);
  EXPECT_EQ(a[1], 1);
  EXPECT_EQ(a[2], -3);
  EXPECT_EQ(a[3], 32);
  EXPECT_EQ(a[4], -4);
  EXPECT_EQ(a[5], 0x10);
  EXPECT_EQ(a[6], 7);
  EXPECT_EQ(a[7], 6);
  EXPECT_EQ(asInts(buffers[1])[0], 1);
}

TEST(Interp, StructAccess) {
  auto c = compile(
      "typedef struct { float lat; float lng; } Rec;\n"
      "__kernel void dist(__global Rec* recs, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  float dx = recs[i].lat - 1.0f;\n"
      "  float dy = recs[i].lng - 2.0f;\n"
      "  out[i] = sqrt(dx * dx + dy * dy);\n"
      "}\n");
  std::vector<float> recs = {4.0f, 6.0f, 1.0f, 2.0f};  // two records
  std::vector<std::vector<std::uint8_t>> buffers = {floatBuffer(recs),
                                                    std::vector<std::uint8_t>(8)};
  NdRange range;
  range.global = {2, 1, 1};
  auto result = runKernel(*c->module->findFunction("dist"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[1]);
  EXPECT_FLOAT_EQ(out[0], 5.0f);
  EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(Interp, VectorTypesEndToEnd) {
  auto c = compile(
      "__kernel void v(__global float4* a, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  float4 x = a[i] * 2.0f;\n"
      "  out[i] = x.x + x.y + x.z + x.w;\n"
      "}\n");
  std::vector<float> a = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<std::vector<std::uint8_t>> buffers = {floatBuffer(a),
                                                    std::vector<std::uint8_t>(8)};
  NdRange range;
  range.global = {2, 1, 1};
  auto result = runKernel(*c->module->findFunction("v"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asFloats(buffers[1]);
  EXPECT_FLOAT_EQ(out[0], 20.0f);
  EXPECT_FLOAT_EQ(out[1], 52.0f);
}

TEST(Interp, StrictBoundsCatchesOverflow) {
  auto c = compile(
      "__kernel void oob(__global int* a) { a[get_global_id(0) + 100] = 1; }\n");
  std::vector<std::vector<std::uint8_t>> buffers = {std::vector<std::uint8_t>(16)};
  NdRange range;
  InterpOptions opts;
  opts.strictBounds = true;
  auto result = runKernel(*c->module->findFunction("oob"), range,
                          {KernelArg::buffer(0)}, buffers, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("out-of-bounds"), std::string::npos);
}

TEST(Interp, LenientBoundsReadsZero) {
  auto c = compile(
      "__kernel void oob(__global int* a, __global int* out) {\n"
      "  out[0] = a[1000] + 5;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {std::vector<std::uint8_t>(16),
                                                    std::vector<std::uint8_t>(4)};
  NdRange range;
  auto result = runKernel(*c->module->findFunction("oob"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(asInts(buffers[1])[0], 5);
  EXPECT_GT(result.oobAccesses, 0u);
}

TEST(Interp, TraceCapturesGlobalAccesses) {
  auto c = compile(
      "__kernel void cp(__global const int* in, __global int* out) {\n"
      "  int i = get_global_id(0);\n"
      "  out[i] = in[i];\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer({1, 2, 3, 4}),
                                                    std::vector<std::uint8_t>(16)};
  NdRange range;
  range.global = {4, 1, 1};
  range.local = {4, 1, 1};
  InterpOptions opts;
  opts.captureGlobalTrace = true;
  auto result = runKernel(*c->module->findFunction("cp"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  // 4 work-items x (1 read + 1 write).
  EXPECT_EQ(result.trace.size(), 8u);
  int reads = 0, writes = 0;
  for (const auto& ev : result.trace) {
    if (ev.isWrite) {
      ++writes;
      EXPECT_EQ(ev.buffer, 1);
    } else {
      ++reads;
      EXPECT_EQ(ev.buffer, 0);
    }
    EXPECT_EQ(ev.size, 4u);
  }
  EXPECT_EQ(reads, 4);
  EXPECT_EQ(writes, 4);
}

TEST(Interp, LoopStatsMatchStaticCounts) {
  auto c = compile(
      "__kernel void k(__global int* a) {\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < 12; i++) { s += i; }\n"
      "  a[get_global_id(0)] = s;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {std::vector<std::uint8_t>(8)};
  NdRange range;
  range.global = {2, 1, 1};
  range.local = {2, 1, 1};
  auto result = runKernel(*c->module->findFunction("k"), range,
                          {KernelArg::buffer(0)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.loops.size(), 1u);
  EXPECT_DOUBLE_EQ(result.loops[0].avgTripCount(), 12.0);
}

TEST(Interp, ProfilerLimitsGroupsAndReportsTrips) {
  auto c = compile(
      "__kernel void k(__global int* a, int n) {\n"
      "  int g = get_global_id(0);\n"
      "  int s = 0;\n"
      "  for (int i = 0; i < n; i++) { s += a[g * n + i]; }\n"
      "  a[g] = s;\n"
      "}\n");
  const int n = 10, wis = 32;
  std::vector<std::int32_t> data(wis * n, 1);
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer(data)};
  NdRange range;
  range.global = {wis, 1, 1};
  range.local = {8, 1, 1};
  ProfileOptions popts;
  popts.groupsToProfile = 2;
  auto profile = profileKernel(*c->module->findFunction("k"), range,
                               {KernelArg::buffer(0), KernelArg::intScalar(n)},
                               buffers, popts);
  ASSERT_TRUE(profile.ok) << profile.error;
  EXPECT_EQ(profile.profiledGroups, 2u);
  EXPECT_EQ(profile.profiledWorkItems, 16u);
  ASSERT_EQ(profile.loopTripCounts.size(), 1u);
  EXPECT_DOUBLE_EQ(profile.loopTripCounts[0], 10.0);
  // Profiling must not modify the caller's buffers.
  EXPECT_EQ(asInts(buffers[0])[0], 1);
  // Each profiled work-item: n reads + 1 write.
  EXPECT_EQ(profile.globalTrace.size(), 16u * (n + 1));
}

TEST(Interp, BarrierDivergenceDetected) {
  auto c = compile(
      "__kernel void bad(__global int* a) {\n"
      "  if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }\n"
      "  a[get_global_id(0)] = 1;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {std::vector<std::uint8_t>(16)};
  NdRange range;
  range.global = {4, 1, 1};
  range.local = {4, 1, 1};
  auto result = runKernel(*c->module->findFunction("bad"), range,
                          {KernelArg::buffer(0)}, buffers, {});
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("barrier divergence"), std::string::npos);
}

TEST(Interp, TwoDimensionalNdRange) {
  auto c = compile(
      "__kernel void t(__global int* out, int w) {\n"
      "  int x = get_global_id(0);\n"
      "  int y = get_global_id(1);\n"
      "  out[y * w + x] = x * 100 + y;\n"
      "}\n");
  const int w = 8, h = 4;
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(w * h * 4)};
  NdRange range;
  range.global = {w, h, 1};
  range.local = {4, 2, 1};
  InterpOptions opts;
  opts.strictBounds = true;
  auto result = runKernel(*c->module->findFunction("t"), range,
                          {KernelArg::buffer(0), KernelArg::intScalar(w)}, buffers,
                          opts);
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asInts(buffers[0]);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) EXPECT_EQ(out[y * w + x], x * 100 + y);
  }
}

TEST(Interp, WhileLoopGcd) {
  auto c = compile(
      "__kernel void g(__global int* io) {\n"
      "  int a = io[0];\n"
      "  int b = io[1];\n"
      "  while (b != 0) { int t = b; b = a % b; a = t; }\n"
      "  io[2] = a;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer({48, 36, 0})};
  NdRange range;
  auto result = runKernel(*c->module->findFunction("g"), range,
                          {KernelArg::buffer(0)}, buffers, {});
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(asInts(buffers[0])[2], 12);
}


TEST(Interp, RunawayLoopGuard) {
  auto c = compile(
      "__kernel void spin(__global int* a) {\n"
      "  int i = 0;\n"
      "  while (a[0] == 0) { i++; }\n"
      "  a[1] = i;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer({0, 0})};
  NdRange range;
  InterpOptions opts;
  opts.maxSteps = 10000;
  auto result = runKernel(*c->module->findFunction("spin"), range,
                          {KernelArg::buffer(0)}, buffers, opts);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("budget"), std::string::npos);
}

TEST(Interp, GroupLimitRunsPrefixOnly) {
  auto c = compile(
      "__kernel void mark(__global int* a) { a[get_global_id(0)] = 1; }\n");
  std::vector<std::vector<std::uint8_t>> buffers = {
      std::vector<std::uint8_t>(64 * 4)};
  NdRange range;
  range.global = {64, 1, 1};
  range.local = {16, 1, 1};
  InterpOptions opts;
  opts.groupLimit = 2;
  auto result = runKernel(*c->module->findFunction("mark"), range,
                          {KernelArg::buffer(0)}, buffers, opts);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.executedGroups, 2u);
  auto out = asInts(buffers[0]);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[i], 1) << i;
  for (int i = 32; i < 64; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(Interp, NestedLoopsAndConditionals) {
  auto c = compile(
      "__kernel void collatz(__global const int* in, __global int* steps) {\n"
      "  int n = in[get_global_id(0)];\n"
      "  int count = 0;\n"
      "  while (n != 1) {\n"
      "    if (n % 2 == 0) { n = n / 2; }\n"
      "    else { n = 3 * n + 1; }\n"
      "    count++;\n"
      "  }\n"
      "  steps[get_global_id(0)] = count;\n"
      "}\n");
  std::vector<std::vector<std::uint8_t>> buffers = {
      intBuffer({1, 2, 3, 6, 7, 27, 97, 871}), std::vector<std::uint8_t>(32)};
  NdRange range;
  range.global = {8, 1, 1};
  auto result = runKernel(*c->module->findFunction("collatz"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers,
                          {});
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asInts(buffers[1]);
  const int expected[] = {0, 1, 7, 8, 16, 111, 118, 178};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], expected[i]) << i;
}

TEST(Interp, PrivateArrayIndexing) {
  auto c = compile(
      "__kernel void hist(__global const int* in, __global int* out) {\n"
      "  int bins[8];\n"
      "  for (int b = 0; b < 8; b++) { bins[b] = 0; }\n"
      "  int g = get_global_id(0);\n"
      "  for (int i = 0; i < 16; i++) { bins[in[g * 16 + i] & 7] += 1; }\n"
      "  for (int b = 0; b < 8; b++) { out[g * 8 + b] = bins[b]; }\n"
      "}\n");
  std::vector<std::int32_t> data(32);
  for (int i = 0; i < 32; ++i) data[i] = i;  // two work-items, 16 values each
  std::vector<std::vector<std::uint8_t>> buffers = {intBuffer(data),
                                                    std::vector<std::uint8_t>(64)};
  NdRange range;
  range.global = {2, 1, 1};
  auto result = runKernel(*c->module->findFunction("hist"), range,
                          {KernelArg::buffer(0), KernelArg::buffer(1)}, buffers,
                          {});
  ASSERT_TRUE(result.ok) << result.error;
  auto out = asInts(buffers[1]);
  for (int b = 0; b < 16; ++b) EXPECT_EQ(out[b], 2) << b;  // each bin hit twice
}

}  // namespace
}  // namespace flexcl::interp
