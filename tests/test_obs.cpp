// Tests for the observability layer (src/obs/, DESIGN.md §9): counter
// registry semantics (atomicity, overflow, reset, the enabled gate), the
// scoped-span tracer (nesting, per-thread lanes, Chrome trace JSON), the
// cycle-attribution explain report (breakdown sums exactly to the predicted
// total for every bundled workload), and the zero-interference contract —
// model and simulator results are bit-identical with observability on or
// off, at any worker count. The concurrency tests here run under the CI's
// TSan job alongside the runtime tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dse/design_space.h"
#include "dse/explorer.h"
#include "model/flexcl.h"
#include "obs/explain.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "workloads/workload.h"

namespace flexcl {
namespace {

/// Restores the global observability switches on scope exit so tests cannot
/// leak state into each other (gtest runs them in one process).
struct ObsGuard {
  ~ObsGuard() {
    obs::setEnabled(false);
    obs::Tracer::global().stop();
    obs::Tracer::global().clear();
    obs::Registry::global().reset();
  }
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterAddValueReset) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("test.alpha");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same counter.
  EXPECT_EQ(&registry.counter("test.alpha"), &c);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // reference stays valid, value zeroed
}

TEST(ObsRegistry, CounterOverflowWrapsModulo64Bits) {
  obs::Counter c;
  c.add(~0ull);
  EXPECT_EQ(c.value(), ~0ull);
  c.add(2);  // wraps: 2^64 - 1 + 2 = 1 (mod 2^64)
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, AddHelperIsNoOpWhenDisabled) {
  ObsGuard guard;
  obs::setEnabled(false);
  obs::add("test.gated", 7);
  obs::setEnabled(true);
  obs::add("test.gated", 5);
  EXPECT_EQ(obs::counter("test.gated").value(), 5u);
}

TEST(ObsRegistry, ConcurrentAddsAreExact) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.counter("test.concurrent");
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsRegistry, SnapshotsAreNameSortedAndJsonWellFormed) {
  obs::Registry registry;
  registry.counter("zeta").add(3);
  registry.counter("alpha").add(1);
  registry.setGauge("beta.gauge", 2.5);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "alpha");
  EXPECT_EQ(counters[1].name, "zeta");
  EXPECT_EQ(counters[1].value, 3u);

  const std::string json = registry.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"beta.gauge\""), std::string::npos);
  // alpha sorts before zeta in the rendered object too.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTrace, InactiveTracerRecordsNothing) {
  ObsGuard guard;
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  {
    obs::Span span("test", "ignored");
  }
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

TEST(ObsTrace, SpansRecordNestingDepth) {
  ObsGuard guard;
  obs::Tracer::global().start();
  {
    obs::Span outer("test", "outer");
    {
      obs::Span inner("test", "inner");
    }
  }
  obs::Tracer::global().stop();
  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[0].lane, spans[1].lane);
  EXPECT_GE(spans[1].durationUs, spans[0].durationUs);
}

TEST(ObsTrace, DistinctThreadsGetDistinctLanes) {
  ObsGuard guard;
  obs::Tracer::global().start();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { obs::Span span("test", "worker"); });
  }
  for (std::thread& t : threads) t.join();
  obs::Tracer::global().stop();

  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  std::set<int> lanes;
  for (const auto& s : spans) lanes.insert(s.lane);
  EXPECT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsTrace, JsonIsChromeTraceEventFormat) {
  ObsGuard guard;
  obs::Tracer::global().start();
  {
    obs::Span span("phase", "with \"quotes\" and\nnewline");
  }
  obs::Tracer::global().stop();
  const std::string json = obs::Tracer::global().json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("with")),  // raw newline not emitted
            json.find('\n', json.find("with")));
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ObsTrace, SpanWhileInactiveIsCheapNoClockNoRecord) {
  ObsGuard guard;
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  bool nameBuilt = false;
  {
    obs::Span span("test", [&] {
      nameBuilt = true;
      return std::string("expensive");
    });
  }
  EXPECT_FALSE(nameBuilt);  // lazy name never materialised when inactive
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

struct PreparedWorkload {
  std::shared_ptr<workloads::CompiledWorkload> compiled;
  model::LaunchInfo launch;
};

PreparedWorkload prepare(const char* suite, const char* benchmark,
                         const char* kernel) {
  const workloads::Workload* w =
      workloads::findWorkload(suite, benchmark, kernel);
  EXPECT_NE(w, nullptr) << suite << "/" << benchmark << "/" << kernel;
  std::string error;
  auto compiled = workloads::compileWorkload(*w, &error);
  EXPECT_TRUE(compiled) << error;
  PreparedWorkload p;
  p.compiled =
      std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
  p.launch = p.compiled->launch();
  return p;
}

TEST(ObsExplain, GoldenTextReportOnNn) {
  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());

  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "nn");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;

  const std::string text = report.text();
  EXPECT_NE(text.find("kernel   : nn (virtex7"), std::string::npos);
  EXPECT_NE(text.find("| component  |"), std::string::npos);
  for (const char* component :
       {"compute", "memory", "fill-drain", "dispatch", "total"}) {
    EXPECT_NE(text.find(component), std::string::npos) << component;
  }
  EXPECT_NE(text.find("100.0%"), std::string::npos);
  EXPECT_NE(text.find("predicted: "), std::string::npos);
  EXPECT_NE(text.find("binding component: "), std::string::npos);
  EXPECT_NE(text.find("primary bottleneck: "), std::string::npos);

  const model::CycleBreakdown& b = report.estimate.breakdown;
  EXPECT_NEAR(b.total(), report.estimate.cycles,
              1e-6 * report.estimate.cycles + 1e-9);
}

TEST(ObsExplain, GoldenJsonReportOnGemm) {
  PreparedWorkload p = prepare("polybench", "gemm", "gemm");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());

  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "gemm");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;

  const std::string json = report.json();
  for (const char* key :
       {"\"kernel\": \"gemm\"", "\"ok\": true", "\"breakdown\"",
        "\"compute\"", "\"memory\"", "\"fill-drain\"", "\"dispatch\"",
        "\"total\"", "\"binding\"", "\"parallel\"", "\"pipeline\"",
        "\"bottleneck\"", "\"hints\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Braces balance (cheap well-formedness check without a JSON parser).
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

// Schema golden: schema_version is always the first key and the top-level
// key order is part of the schema. A change here means the shape changed —
// bump kExplainSchemaVersion and update the golden.
TEST(ObsExplain, JsonSchemaVersionAndKeyOrderArePinned) {
  model::Estimate bad;
  bad.ok = false;
  bad.error = "boom";
  const obs::ExplainReport failed =
      obs::buildExplainReport(bad, model::DesignPoint{}, "k", "dev");
  EXPECT_EQ(failed.json(),
            "{\"schema_version\": 3, \"kernel\": \"k\", \"device\": \"dev\", "
            "\"design\": \"" +
                model::DesignPoint{}.str() + "\", \"ok\": false, \"error\": \"boom\"}");

  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());
  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "nn");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;
  const std::string json = report.json();
  EXPECT_EQ(json.rfind("{\"schema_version\": 3, \"kernel\"", 0), 0u);
  std::size_t pos = 0;
  for (const char* key :
       {"\"schema_version\"", "\"kernel\"", "\"device\"", "\"design\"",
        "\"ok\"", "\"mode\"", "\"cycles\"", "\"milliseconds\"",
        "\"breakdown\"", "\"parallel\"", "\"pipeline\"", "\"bottleneck\"",
        "\"static_profile\""}) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key;  // present AND in this order
    pos = at;
  }
  // explainEstimate knows the tier outcome: verdict + provenance are filled.
  EXPECT_NE(json.find("\"static_profile\": {\"verdict\": \""),
            std::string::npos);
  EXPECT_NE(json.find("\"provenance\": \""), std::string::npos);
  // A report built from a bare estimate has no tier knowledge: null.
  EXPECT_NE(obs::buildExplainReport(report.estimate, space.front(), "nn", "dev")
                .json()
                .find("\"static_profile\": null"),
            std::string::npos);
}

TEST(ObsExplain, FailedEstimateRendersError) {
  model::Estimate bad;
  bad.ok = false;
  bad.error = "forced failure";
  const obs::ExplainReport report =
      obs::buildExplainReport(bad, model::DesignPoint{}, "k", "dev");
  EXPECT_NE(report.text().find("estimate failed: forced failure"),
            std::string::npos);
  EXPECT_NE(report.json().find("\"ok\": false"), std::string::npos);
}

// The acceptance property of the attribution layer: the four components sum
// to the predicted total for every bundled workload, under both
// communication modes and all pipelining flags the design space enumerates.
TEST(ObsExplain, BreakdownSumsToTotalAcrossAllBundledWorkloads) {
  int workloadsChecked = 0;
  int estimatesChecked = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      std::string error;
      auto compiled = workloads::compileWorkload(w, &error);
      ASSERT_TRUE(compiled) << w.fullName() << ": " << error;
      const model::LaunchInfo launch = compiled->launch();
      model::FlexCl flexcl(model::Device::virtex7());
      const auto space = dse::enumerateDesignSpace(compiled->meta.range, false);
      ASSERT_FALSE(space.empty()) << w.fullName();

      // A spread of design points per workload keeps the test fast while
      // still covering both modes and pipeline variants.
      const std::size_t step = std::max<std::size_t>(1, space.size() / 5);
      for (std::size_t i = 0; i < space.size(); i += step) {
        const model::Estimate est = flexcl.estimate(launch, space[i]);
        if (!est.ok) continue;
        const model::CycleBreakdown& b = est.breakdown;
        EXPECT_NEAR(b.total(), est.cycles, 1e-6 * est.cycles + 1e-9)
            << w.fullName() << " @ " << space[i].str();
        EXPECT_GE(b.compute, 0.0) << w.fullName();
        EXPECT_GE(b.memory, 0.0) << w.fullName();
        EXPECT_GE(b.fillDrain, 0.0) << w.fullName();
        EXPECT_GE(b.dispatch, 0.0) << w.fullName();
        ++estimatesChecked;
      }
      ++workloadsChecked;
    }
  }
  EXPECT_EQ(workloadsChecked, 60);
  EXPECT_GT(estimatesChecked, 100);
}

// ---------------------------------------------------------------------------
// Zero-interference: results are bit-identical with observability on or off
// ---------------------------------------------------------------------------

TEST(ObsDeterminism, TracedParallelExplorationMatchesUntracedSerial) {
  PreparedWorkload p = prepare("rodinia", "nn", "nn");

  auto explore = [&](int jobs) {
    model::FlexCl flexcl(model::Device::virtex7());
    dse::ExplorerOptions opts;
    opts.jobs = jobs;
    dse::Explorer explorer(flexcl, p.launch, opts);
    const auto space = dse::enumerateDesignSpace(
        p.compiled->meta.range, explorer.kernelHasBarriers());
    return explorer.explore(space);
  };

  // Baseline: serial, observability fully off.
  obs::setEnabled(false);
  obs::Tracer::global().stop();
  const dse::ExplorationResult off = explore(1);

  // Stressed: 4 workers, counters and tracer on.
  dse::ExplorationResult on;
  {
    ObsGuard guard;
    obs::setEnabled(true);
    obs::Tracer::global().start();
    on = explore(4);
    obs::Tracer::global().stop();
    // The instrumented run actually recorded something.
    EXPECT_GT(obs::Tracer::global().spans().size(), 0u);
    EXPECT_GT(obs::Registry::global().counter("model.estimates").value(), 0u);
  }

  ASSERT_EQ(off.designs.size(), on.designs.size());
  for (std::size_t i = 0; i < off.designs.size(); ++i) {
    // Bit-identical doubles: == on purpose, not NEAR.
    EXPECT_EQ(off.designs[i].flexclCycles, on.designs[i].flexclCycles) << i;
    EXPECT_EQ(off.designs[i].simCycles, on.designs[i].simCycles) << i;
    EXPECT_EQ(off.designs[i].sdaccelCycles, on.designs[i].sdaccelCycles) << i;
  }
  EXPECT_EQ(off.bestByFlexcl, on.bestByFlexcl);
  EXPECT_EQ(off.bestBySim, on.bestBySim);
}

// ---------------------------------------------------------------------------
// runtime::Stats as a thin view over the registry
// ---------------------------------------------------------------------------

TEST(ObsStats, PublishToMirrorsSnapshotIntoGauges) {
  runtime::Stats stats;
  stats.jobs = 4;
  stats.compile.hits = 7;
  stats.compile.misses = 3;
  stats.flexclEval.entries = 144;

  obs::Registry registry;
  stats.publishTo(registry);
  const auto gauges = registry.gauges();
  auto find = [&](const std::string& name) -> double {
    for (const auto& g : gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1;
  };
  EXPECT_EQ(find("runtime.jobs"), 4.0);
  EXPECT_EQ(find("cache.compile.hits"), 7.0);
  EXPECT_EQ(find("cache.compile.misses"), 3.0);
  EXPECT_EQ(find("cache.flexcl_eval.entries"), 144.0);
  EXPECT_EQ(find("cache.sim_eval.hits"), 0.0);
}

// TSan workload: registry snapshots are safe while workers are publishing.
TEST(ObsStats, ConcurrentSnapshotsDuringInstrumentedExploration) {
  ObsGuard guard;
  obs::setEnabled(true);

  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  std::atomic<bool> done{false};
  std::thread reader([&done] {
    while (!done.load()) {
      const std::string json = obs::Registry::global().json();
      EXPECT_FALSE(json.empty());
      std::this_thread::yield();
    }
  });

  model::FlexCl flexcl(model::Device::virtex7());
  dse::ExplorerOptions opts;
  opts.jobs = 4;
  dse::Explorer explorer(flexcl, p.launch, opts);
  const auto space = dse::enumerateDesignSpace(
      p.compiled->meta.range, explorer.kernelHasBarriers());
  const dse::ExplorationResult result = explorer.explore(space);
  done.store(true);
  reader.join();
  EXPECT_FALSE(result.designs.empty());
}

}  // namespace
}  // namespace flexcl
