// Tests for the observability layer (src/obs/, DESIGN.md §9/§14): counter
// registry semantics (atomicity, overflow, reset, the enabled gate), the
// log-bucketed latency histograms (bucketing scheme, quantile resolution,
// snapshot delta/merge algebra, golden JSON), the scoped-span tracer
// (nesting, per-thread lanes, request-id tagging, Chrome trace JSON),
// request scopes (thread-local stacking, phase accumulation, provenance),
// the structured log's golden line-JSON rendering, the cycle-attribution
// explain report (breakdown sums exactly to the predicted total for every
// bundled workload), and the zero-interference contract — model and
// simulator results are bit-identical with observability on or off, at any
// worker count, across all 60 bundled workloads. The concurrency tests here
// run under the CI's TSan job alongside the runtime tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dse/design_space.h"
#include "dse/explorer.h"
#include "model/flexcl.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/request_scope.h"
#include "obs/trace.h"
#include "runtime/stats.h"
#include "workloads/workload.h"

namespace flexcl {
namespace {

/// Restores the global observability switches on scope exit so tests cannot
/// leak state into each other (gtest runs them in one process).
struct ObsGuard {
  ~ObsGuard() {
    obs::setEnabled(false);
    obs::Tracer::global().stop();
    obs::Tracer::global().clear();
    obs::Registry::global().reset();
    obs::Log::global().close();
  }
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, CounterAddValueReset) {
  obs::Registry registry;
  obs::Counter& c = registry.counter("test.alpha");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same counter.
  EXPECT_EQ(&registry.counter("test.alpha"), &c);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // reference stays valid, value zeroed
}

TEST(ObsRegistry, CounterOverflowWrapsModulo64Bits) {
  obs::Counter c;
  c.add(~0ull);
  EXPECT_EQ(c.value(), ~0ull);
  c.add(2);  // wraps: 2^64 - 1 + 2 = 1 (mod 2^64)
  EXPECT_EQ(c.value(), 1u);
}

TEST(ObsRegistry, AddHelperIsNoOpWhenDisabled) {
  ObsGuard guard;
  obs::setEnabled(false);
  obs::add("test.gated", 7);
  obs::setEnabled(true);
  obs::add("test.gated", 5);
  EXPECT_EQ(obs::counter("test.gated").value(), 5u);
}

TEST(ObsRegistry, ConcurrentAddsAreExact) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      obs::Counter& c = registry.counter("test.concurrent");
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("test.concurrent").value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsRegistry, SnapshotsAreNameSortedAndJsonWellFormed) {
  obs::Registry registry;
  registry.counter("zeta").add(3);
  registry.counter("alpha").add(1);
  registry.setGauge("beta.gauge", 2.5);

  const auto counters = registry.counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "alpha");
  EXPECT_EQ(counters[1].name, "zeta");
  EXPECT_EQ(counters[1].value, 3u);

  const std::string json = registry.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"beta.gauge\""), std::string::npos);
  // alpha sorts before zeta in the rendered object too.
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

// ---------------------------------------------------------------------------
// Histograms (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(ObsHistogram, BucketIndexSchemeIsLogWithLinearSubBuckets) {
  using H = obs::Histogram;
  // Bucket 0 catches sub-1 values, negatives and NaN (never a crash).
  EXPECT_EQ(H::bucketIndex(0.0), 0);
  EXPECT_EQ(H::bucketIndex(0.999), 0);
  EXPECT_EQ(H::bucketIndex(-42.0), 0);
  EXPECT_EQ(H::bucketIndex(std::nan("")), 0);
  EXPECT_EQ(H::bucketIndex(1.0), 1);
  // Every value lands in a bucket whose [low, high) bounds contain it, and
  // the bucket's relative width is at most 1/kSubBuckets.
  for (double v : {1.0, 1.5, 2.0, 3.0, 7.9, 8.0, 100.0, 1023.0, 1024.0,
                   5e6, 1e12}) {
    const int i = H::bucketIndex(v);
    ASSERT_GE(i, 1) << v;
    ASSERT_LT(i, H::kBucketCount) << v;
    EXPECT_LE(H::bucketLow(i), v) << v;
    EXPECT_LT(v, H::bucketHigh(i)) << v;
    EXPECT_LE((H::bucketHigh(i) - H::bucketLow(i)) / H::bucketLow(i),
              1.0 / H::kSubBuckets + 1e-12)
        << v;
  }
  // Bucket bounds tile the axis without gaps or overlap.
  for (int i = 1; i + 1 < H::kBucketCount; ++i) {
    EXPECT_DOUBLE_EQ(H::bucketHigh(i), H::bucketLow(i + 1)) << i;
  }
  // Values beyond the top bucket saturate instead of indexing out of range.
  EXPECT_EQ(H::bucketIndex(1e300), H::kBucketCount - 1);
}

TEST(ObsHistogram, QuantilesWithinBucketResolution) {
  obs::Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_NEAR(s.mean(), 500.5, 1e-9);  // sum is exact, not bucketed
  // Quantiles come from bucket midpoints: <= 12.5% relative error.
  EXPECT_NEAR(s.quantile(0.50), 500.0, 0.125 * 500.0);
  EXPECT_NEAR(s.quantile(0.90), 900.0, 0.125 * 900.0);
  EXPECT_NEAR(s.quantile(0.99), 990.0, 0.125 * 990.0);
  EXPECT_GE(s.maxValue(), 1000.0);
  EXPECT_LE(s.maxValue(), 1000.0 * (1.0 + 1.0 / obs::Histogram::kSubBuckets));
  // Quantiles are monotone in q.
  EXPECT_LE(s.quantile(0.50), s.quantile(0.90));
  EXPECT_LE(s.quantile(0.90), s.quantile(0.99));
  EXPECT_LE(s.quantile(0.99), s.maxValue());
}

TEST(ObsHistogram, SnapshotDeltaAndMergeRecompose) {
  obs::Histogram h;
  for (int i = 0; i < 10; ++i) h.record(100.0);
  obs::HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 10; ++i) h.record(3000.0);
  const obs::HistogramSnapshot after = h.snapshot();

  // The delta is the distribution of just the new samples — the histogram
  // analogue of CounterSnapshot::deltaSince per-run accounting.
  const obs::HistogramSnapshot delta = after.deltaSince(before);
  EXPECT_EQ(delta.count, 10u);
  EXPECT_NEAR(delta.quantile(0.50), 3000.0, 0.125 * 3000.0);
  EXPECT_NEAR(delta.mean(), 3000.0, 1e-9);

  // Merging the delta back recomposes the full snapshot exactly.
  before += delta;
  EXPECT_EQ(before.count, after.count);
  EXPECT_EQ(before.buckets, after.buckets);
  EXPECT_DOUBLE_EQ(before.sum, after.sum);
}

TEST(ObsHistogram, RegistryResetZeroesAndReferenceStaysValid) {
  obs::Registry registry;
  obs::Histogram& h = registry.histogram("test.lat");
  h.record(5.0);
  EXPECT_EQ(&registry.histogram("test.lat"), &h);
  EXPECT_EQ(registry.histograms().size(), 1u);
  EXPECT_EQ(registry.histograms()[0].value.count, 1u);
  registry.reset();
  EXPECT_EQ(h.snapshot().count, 0u);  // reference stays valid, zeroed
  h.record(7.0);
  EXPECT_EQ(registry.histograms()[0].value.count, 1u);
}

TEST(ObsHistogram, JsonKeyOrderIsPinned) {
  // Golden: snapshot JSON key order is part of the metrics schema.
  EXPECT_EQ(obs::HistogramSnapshot{}.json(),
            "{\"count\": 0, \"p50\": 0.000, \"p90\": 0.000, \"p99\": 0.000,"
            " \"max\": 0.000, \"mean\": 0.000}");
  obs::Histogram h;
  h.record(0.5);  // bucket 0: quantiles report 0, max reports the bound
  EXPECT_EQ(h.snapshot().json(),
            "{\"count\": 1, \"p50\": 0.000, \"p90\": 0.000, \"p99\": 0.000,"
            " \"max\": 1.000, \"mean\": 0.500}");

  obs::Registry registry;
  registry.counter("c").add(1);
  registry.setGauge("g", 2);
  registry.histogram("h").record(0.5);
  const std::string json = registry.json();
  EXPECT_NE(json.find("\"histograms\": {\"h\": {\"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_LT(json.find("\"counters\""), json.find("\"gauges\""));
  EXPECT_LT(json.find("\"gauges\""), json.find("\"histograms\""));
}

TEST(ObsHistogram, RecordHelperIsNoOpWhenDisabled) {
  ObsGuard guard;
  obs::setEnabled(false);
  obs::record("test.gated_hist", 10.0);
  obs::setEnabled(true);
  obs::record("test.gated_hist", 20.0);
  const obs::HistogramSnapshot s =
      obs::histogram("test.gated_hist").snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.sum, 20.0);
}

// TSan workload (run by CI's `-R ...|Histogram` filter): concurrent records
// against one histogram are exact in total and per-bucket.
TEST(ObsHistogramConcurrency, ConcurrentRecordsAreExact) {
  obs::Registry registry;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      obs::Histogram& h = registry.histogram("test.concurrent_hist");
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.record(static_cast<double>(1 + (i + t) % 500));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::HistogramSnapshot s =
      registry.histogram("test.concurrent_hist").snapshot();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kRecordsPerThread;
  EXPECT_EQ(s.count, expected);
  std::uint64_t inBuckets = 0;
  for (std::uint64_t b : s.buckets) inBuckets += b;
  EXPECT_EQ(inBuckets, expected) << "every sample lands in exactly one bucket";
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTrace, InactiveTracerRecordsNothing) {
  ObsGuard guard;
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  {
    obs::Span span("test", "ignored");
  }
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

TEST(ObsTrace, SpansRecordNestingDepth) {
  ObsGuard guard;
  obs::Tracer::global().start();
  {
    obs::Span outer("test", "outer");
    {
      obs::Span inner("test", "inner");
    }
  }
  obs::Tracer::global().stop();
  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Inner closes (and records) first.
  EXPECT_EQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_EQ(spans[0].lane, spans[1].lane);
  EXPECT_GE(spans[1].durationUs, spans[0].durationUs);
}

TEST(ObsTrace, DistinctThreadsGetDistinctLanes) {
  ObsGuard guard;
  obs::Tracer::global().start();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] { obs::Span span("test", "worker"); });
  }
  for (std::thread& t : threads) t.join();
  obs::Tracer::global().stop();

  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads));
  std::set<int> lanes;
  for (const auto& s : spans) lanes.insert(s.lane);
  EXPECT_EQ(lanes.size(), static_cast<std::size_t>(kThreads));
}

TEST(ObsTrace, JsonIsChromeTraceEventFormat) {
  ObsGuard guard;
  obs::Tracer::global().start();
  {
    obs::Span span("phase", "with \"quotes\" and\nnewline");
  }
  obs::Tracer::global().stop();
  const std::string json = obs::Tracer::global().json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"phase\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);  // escaped
  EXPECT_NE(json.find("\\n"), std::string::npos);
  EXPECT_EQ(json.find('\n', json.find("with")),  // raw newline not emitted
            json.find('\n', json.find("with")));
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
}

TEST(ObsTrace, SpanWhileInactiveIsCheapNoClockNoRecord) {
  ObsGuard guard;
  obs::Tracer::global().stop();
  obs::Tracer::global().clear();
  bool nameBuilt = false;
  {
    obs::Span span("test", [&] {
      nameBuilt = true;
      return std::string("expensive");
    });
  }
  EXPECT_FALSE(nameBuilt);  // lazy name never materialised when inactive
  EXPECT_TRUE(obs::Tracer::global().spans().empty());
}

// ---------------------------------------------------------------------------
// Request scopes (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(ObsRequestScope, NestingStacksAndRestoresThreadState) {
  EXPECT_EQ(obs::RequestScope::current(), nullptr);
  EXPECT_EQ(obs::Tracer::threadRequestId(), 0u);
  {
    obs::RequestScope outer(7, "estimate");
    EXPECT_EQ(obs::RequestScope::current(), &outer);
    EXPECT_EQ(obs::Tracer::threadRequestId(), 7u);
    {
      obs::RequestScope inner(8, "lint");
      EXPECT_EQ(obs::RequestScope::current(), &inner);
      EXPECT_EQ(obs::Tracer::threadRequestId(), 8u);
    }
    EXPECT_EQ(obs::RequestScope::current(), &outer);
    EXPECT_EQ(obs::Tracer::threadRequestId(), 7u);
  }
  EXPECT_EQ(obs::RequestScope::current(), nullptr);
  EXPECT_EQ(obs::Tracer::threadRequestId(), 0u);
}

TEST(ObsRequestScope, SpansAreTaggedWithRequestId) {
  ObsGuard guard;
  obs::Tracer::global().start();
  {
    obs::RequestScope scope(42, "estimate");
    obs::Span span("serve", "tagged");
  }
  {
    obs::Span span("serve", "untagged");  // outside any scope: no tag
  }
  obs::Tracer::global().stop();
  const auto spans = obs::Tracer::global().spans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].requestId, 42u);
  EXPECT_EQ(spans[1].requestId, 0u);
  const std::string json = obs::Tracer::global().json();
  EXPECT_NE(json.find("\"request\": 42"), std::string::npos);
}

TEST(ObsRequestScope, PhasesAccumulateAndProvenanceTracksComputes) {
  obs::RequestScope scope(1, "estimate");
  EXPECT_STREQ(scope.provenance(), "hit");  // nothing computed yet
  scope.addPhaseUs("eval", 10.0);
  scope.addPhaseUs("persist", 3.0);
  scope.addPhaseUs("eval", 5.0);  // repeat visits sum into one phase
  ASSERT_EQ(scope.phases().size(), 2u);
  EXPECT_EQ(scope.phases()[0].first, "eval");
  EXPECT_DOUBLE_EQ(scope.phases()[0].second, 15.0);
  EXPECT_DOUBLE_EQ(scope.phases()[1].second, 3.0);
  scope.markComputed();
  EXPECT_STREQ(scope.provenance(), "miss");
}

TEST(ObsRequestScope, PhaseTimerReadsNoClockWhenTimingDisabled) {
  ObsGuard guard;
  obs::setEnabled(false);  // and no log open => requestTimingEnabled() false
  EXPECT_FALSE(obs::requestTimingEnabled());
  obs::RequestScope scope(1, "estimate");
  {
    obs::PhaseTimer timer(&scope, "eval");
  }
  EXPECT_TRUE(scope.phases().empty());
  obs::setEnabled(true);
  EXPECT_TRUE(obs::requestTimingEnabled());
  {
    obs::PhaseTimer timer(&scope, "eval");
  }
  ASSERT_EQ(scope.phases().size(), 1u);
  EXPECT_GE(scope.phases()[0].second, 0.0);
  {
    obs::PhaseTimer timer(nullptr, "eval");  // null scope: always a no-op
  }
  EXPECT_EQ(scope.phases().size(), 1u);
}

// ---------------------------------------------------------------------------
// Structured log (DESIGN.md §14)
// ---------------------------------------------------------------------------

TEST(ObsLog, RenderGoldenLineAndPinnedKeyOrder) {
  obs::LogEvent e;
  e.event = "request";
  e.requestId = 7;
  e.kind = "estimate";
  e.outcome = "ok";
  e.provenance = "miss";
  e.durationUs = 1234.56;
  e.queueWaitUs = 12.34;
  e.phases = {{"parse", 1.0}, {"eval", 1200.0}};
  // Fast request (slow threshold disabled): phases are omitted.
  EXPECT_EQ(obs::Log::render(e, /*slowUs=*/-1, /*tsUs=*/1722500000000000.0),
            "{\"ts_us\": 1722500000000000, \"level\": \"info\","
            " \"event\": \"request\", \"id\": 7, \"kind\": \"estimate\","
            " \"outcome\": \"ok\", \"cache\": \"miss\","
            " \"duration_us\": 1234.6, \"queue_wait_us\": 12.3}");
  // Over the slow threshold: escalated to warn with the phase breakdown.
  EXPECT_EQ(obs::Log::render(e, /*slowUs=*/1000.0, /*tsUs=*/1.0),
            "{\"ts_us\": 1, \"level\": \"warn\", \"event\": \"request\","
            " \"id\": 7, \"kind\": \"estimate\", \"outcome\": \"ok\","
            " \"cache\": \"miss\", \"duration_us\": 1234.6,"
            " \"queue_wait_us\": 12.3,"
            " \"phases\": {\"parse\": 1.0, \"eval\": 1200.0}}");
  // Defaulted fields are omitted entirely; detail is escaped.
  obs::LogEvent minimal;
  minimal.level = "error";
  minimal.event = "serve.start";
  minimal.detail = "path with \"quotes\"";
  EXPECT_EQ(obs::Log::render(minimal, -1, 2.0),
            "{\"ts_us\": 2, \"level\": \"error\", \"event\": \"serve.start\","
            " \"detail\": \"path with \\\"quotes\\\"\"}");
}

TEST(ObsLog, WritesLineJsonAndGatesWhenClosed) {
  ObsGuard guard;
  const std::string path = ::testing::TempDir() + "flexcl_obs_log_test.jsonl";
  std::remove(path.c_str());
  EXPECT_FALSE(obs::logEnabled());
  obs::LogEvent dropped;
  dropped.event = "dropped";
  obs::logEvent(dropped);  // no log open: silently discarded

  ASSERT_TRUE(obs::Log::global().open(path, /*slowUs=*/-1));
  EXPECT_TRUE(obs::logEnabled());
  obs::LogEvent e;
  e.event = "request";
  e.requestId = 3;
  obs::logEvent(e);
  obs::Log::global().close();
  EXPECT_FALSE(obs::logEnabled());

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"event\": \"request\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"id\": 3"), std::string::npos);
  EXPECT_EQ(lines[0].find("dropped"), std::string::npos);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Explain
// ---------------------------------------------------------------------------

struct PreparedWorkload {
  std::shared_ptr<workloads::CompiledWorkload> compiled;
  model::LaunchInfo launch;
};

PreparedWorkload prepare(const char* suite, const char* benchmark,
                         const char* kernel) {
  const workloads::Workload* w =
      workloads::findWorkload(suite, benchmark, kernel);
  EXPECT_NE(w, nullptr) << suite << "/" << benchmark << "/" << kernel;
  std::string error;
  auto compiled = workloads::compileWorkload(*w, &error);
  EXPECT_TRUE(compiled) << error;
  PreparedWorkload p;
  p.compiled =
      std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
  p.launch = p.compiled->launch();
  return p;
}

TEST(ObsExplain, GoldenTextReportOnNn) {
  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());

  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "nn");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;

  const std::string text = report.text();
  EXPECT_NE(text.find("kernel   : nn (virtex7"), std::string::npos);
  EXPECT_NE(text.find("| component  |"), std::string::npos);
  for (const char* component :
       {"compute", "memory", "fill-drain", "dispatch", "total"}) {
    EXPECT_NE(text.find(component), std::string::npos) << component;
  }
  EXPECT_NE(text.find("100.0%"), std::string::npos);
  EXPECT_NE(text.find("predicted: "), std::string::npos);
  EXPECT_NE(text.find("binding component: "), std::string::npos);
  EXPECT_NE(text.find("primary bottleneck: "), std::string::npos);

  const model::CycleBreakdown& b = report.estimate.breakdown;
  EXPECT_NEAR(b.total(), report.estimate.cycles,
              1e-6 * report.estimate.cycles + 1e-9);
}

TEST(ObsExplain, GoldenJsonReportOnGemm) {
  PreparedWorkload p = prepare("polybench", "gemm", "gemm");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());

  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "gemm");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;

  const std::string json = report.json();
  for (const char* key :
       {"\"kernel\": \"gemm\"", "\"ok\": true", "\"breakdown\"",
        "\"compute\"", "\"memory\"", "\"fill-drain\"", "\"dispatch\"",
        "\"total\"", "\"binding\"", "\"parallel\"", "\"pipeline\"",
        "\"bottleneck\"", "\"hints\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // Braces balance (cheap well-formedness check without a JSON parser).
  int depth = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

// Schema golden: schema_version is always the first key and the top-level
// key order is part of the schema. A change here means the shape changed —
// bump kExplainSchemaVersion and update the golden.
TEST(ObsExplain, JsonSchemaVersionAndKeyOrderArePinned) {
  model::Estimate bad;
  bad.ok = false;
  bad.error = "boom";
  const obs::ExplainReport failed =
      obs::buildExplainReport(bad, model::DesignPoint{}, "k", "dev");
  EXPECT_EQ(failed.json(),
            "{\"schema_version\": 4, \"kernel\": \"k\", \"device\": \"dev\", "
            "\"design\": \"" +
                model::DesignPoint{}.str() + "\", \"ok\": false, \"error\": \"boom\"}");

  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  model::FlexCl flexcl(model::Device::virtex7());
  const auto space = dse::enumerateDesignSpace(p.compiled->meta.range, false);
  ASSERT_FALSE(space.empty());
  const obs::ExplainReport report =
      obs::explainEstimate(flexcl, p.launch, space.front(), "nn");
  ASSERT_TRUE(report.estimate.ok) << report.estimate.error;
  const std::string json = report.json();
  EXPECT_EQ(json.rfind("{\"schema_version\": 4, \"kernel\"", 0), 0u);
  std::size_t pos = 0;
  for (const char* key :
       {"\"schema_version\"", "\"kernel\"", "\"device\"", "\"design\"",
        "\"ok\"", "\"mode\"", "\"cycles\"", "\"milliseconds\"",
        "\"breakdown\"", "\"parallel\"", "\"pipeline\"", "\"bottleneck\"",
        "\"static_profile\"", "\"race\""}) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key;  // present AND in this order
    pos = at;
  }
  // explainEstimate knows the tier outcome: verdict + provenance are filled.
  EXPECT_NE(json.find("\"static_profile\": {\"verdict\": \""),
            std::string::npos);
  EXPECT_NE(json.find("\"provenance\": \""), std::string::npos);
  // explainEstimate also runs the race verifier: verdict + reason rendered.
  EXPECT_NE(json.find("\"race\": {\"verdict\": \""), std::string::npos);
  // A report built from a bare estimate has no tier knowledge: null.
  const std::string bare =
      obs::buildExplainReport(report.estimate, space.front(), "nn", "dev")
          .json();
  EXPECT_NE(bare.find("\"static_profile\": null"), std::string::npos);
  EXPECT_NE(bare.find("\"race\": null"), std::string::npos);
}

TEST(ObsExplain, FailedEstimateRendersError) {
  model::Estimate bad;
  bad.ok = false;
  bad.error = "forced failure";
  const obs::ExplainReport report =
      obs::buildExplainReport(bad, model::DesignPoint{}, "k", "dev");
  EXPECT_NE(report.text().find("estimate failed: forced failure"),
            std::string::npos);
  EXPECT_NE(report.json().find("\"ok\": false"), std::string::npos);
}

// The acceptance property of the attribution layer: the four components sum
// to the predicted total for every bundled workload, under both
// communication modes and all pipelining flags the design space enumerates.
TEST(ObsExplain, BreakdownSumsToTotalAcrossAllBundledWorkloads) {
  int workloadsChecked = 0;
  int estimatesChecked = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      std::string error;
      auto compiled = workloads::compileWorkload(w, &error);
      ASSERT_TRUE(compiled) << w.fullName() << ": " << error;
      const model::LaunchInfo launch = compiled->launch();
      model::FlexCl flexcl(model::Device::virtex7());
      const auto space = dse::enumerateDesignSpace(compiled->meta.range, false);
      ASSERT_FALSE(space.empty()) << w.fullName();

      // A spread of design points per workload keeps the test fast while
      // still covering both modes and pipeline variants.
      const std::size_t step = std::max<std::size_t>(1, space.size() / 5);
      for (std::size_t i = 0; i < space.size(); i += step) {
        const model::Estimate est = flexcl.estimate(launch, space[i]);
        if (!est.ok) continue;
        const model::CycleBreakdown& b = est.breakdown;
        EXPECT_NEAR(b.total(), est.cycles, 1e-6 * est.cycles + 1e-9)
            << w.fullName() << " @ " << space[i].str();
        EXPECT_GE(b.compute, 0.0) << w.fullName();
        EXPECT_GE(b.memory, 0.0) << w.fullName();
        EXPECT_GE(b.fillDrain, 0.0) << w.fullName();
        EXPECT_GE(b.dispatch, 0.0) << w.fullName();
        ++estimatesChecked;
      }
      ++workloadsChecked;
    }
  }
  EXPECT_EQ(workloadsChecked, 60);
  EXPECT_GT(estimatesChecked, 100);
}

// ---------------------------------------------------------------------------
// Zero-interference: results are bit-identical with observability on or off
// ---------------------------------------------------------------------------

TEST(ObsDeterminism, TracedParallelExplorationMatchesUntracedSerial) {
  PreparedWorkload p = prepare("rodinia", "nn", "nn");

  auto explore = [&](int jobs) {
    model::FlexCl flexcl(model::Device::virtex7());
    dse::ExplorerOptions opts;
    opts.jobs = jobs;
    dse::Explorer explorer(flexcl, p.launch, opts);
    const auto space = dse::enumerateDesignSpace(
        p.compiled->meta.range, explorer.kernelHasBarriers());
    return explorer.explore(space);
  };

  // Baseline: serial, observability fully off.
  obs::setEnabled(false);
  obs::Tracer::global().stop();
  const dse::ExplorationResult off = explore(1);

  // Stressed: 4 workers, counters and tracer on.
  dse::ExplorationResult on;
  {
    ObsGuard guard;
    obs::setEnabled(true);
    obs::Tracer::global().start();
    on = explore(4);
    obs::Tracer::global().stop();
    // The instrumented run actually recorded something — including the
    // pool's queue-wait histogram, which only samples when obs is on.
    EXPECT_GT(obs::Tracer::global().spans().size(), 0u);
    EXPECT_GT(obs::Registry::global().counter("model.estimates").value(), 0u);
    EXPECT_GT(
        obs::Registry::global().histogram("pool.queue_wait_us").snapshot().count,
        0u);
  }

  ASSERT_EQ(off.designs.size(), on.designs.size());
  for (std::size_t i = 0; i < off.designs.size(); ++i) {
    // Bit-identical doubles: == on purpose, not NEAR.
    EXPECT_EQ(off.designs[i].flexclCycles, on.designs[i].flexclCycles) << i;
    EXPECT_EQ(off.designs[i].simCycles, on.designs[i].simCycles) << i;
    EXPECT_EQ(off.designs[i].sdaccelCycles, on.designs[i].sdaccelCycles) << i;
  }
  EXPECT_EQ(off.bestByFlexcl, on.bestByFlexcl);
  EXPECT_EQ(off.bestBySim, on.bestBySim);
}

// The full-suite extension of the contract to PR 8's instrumentation: every
// bundled workload estimates bit-identically whether the run is bare or
// wrapped in a request scope with counters, histograms, tracing and the
// structured log all live. Histograms and scopes observe; they never touch
// model state.
TEST(ObsDeterminism, SixtyWorkloadEstimatesBitIdenticalWithScopesAndHistograms) {
  struct Sample {
    std::string name;
    bool ok;
    double cycles;
    double milliseconds;
  };
  const std::string logPath =
      ::testing::TempDir() + "flexcl_obs_determinism_log.jsonl";

  auto sweep = [&](bool instrumented) {
    std::vector<Sample> out;
    std::uint64_t id = 0;
    for (const auto* suite :
         {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
      for (const workloads::Workload& w : *suite) {
        std::string error;
        auto compiled = workloads::compileWorkload(w, &error);
        if (!compiled) {
          ADD_FAILURE() << w.fullName() << ": " << error;
          continue;
        }
        const model::LaunchInfo launch = compiled->launch();
        model::FlexCl flexcl(model::Device::virtex7());
        const auto space =
            dse::enumerateDesignSpace(compiled->meta.range, false);
        if (space.empty()) continue;
        model::Estimate est;
        if (instrumented) {
          obs::RequestScope scope(++id, "estimate");
          obs::PhaseTimer timer(&scope, "eval");
          obs::Span span("model", w.fullName());
          est = flexcl.estimate(launch, space.front());
          obs::record("test.estimate_us", 1.0);
          obs::LogEvent event;
          event.event = "request";
          event.requestId = id;
          obs::logEvent(event);
        } else {
          est = flexcl.estimate(launch, space.front());
        }
        out.push_back({w.fullName(), est.ok, est.ok ? est.cycles : 0.0,
                       est.ok ? est.milliseconds : 0.0});
      }
    }
    return out;
  };

  obs::setEnabled(false);
  obs::Tracer::global().stop();
  const std::vector<Sample> bare = sweep(false);

  std::vector<Sample> instrumented;
  {
    ObsGuard guard;
    obs::setEnabled(true);
    obs::Tracer::global().start();
    ASSERT_TRUE(obs::Log::global().open(logPath, /*slowUs=*/-1));
    instrumented = sweep(true);
    obs::Tracer::global().stop();
    EXPECT_EQ(
        obs::Registry::global().histogram("test.estimate_us").snapshot().count,
        60u);
  }
  std::remove(logPath.c_str());

  ASSERT_EQ(bare.size(), instrumented.size());
  EXPECT_EQ(bare.size(), 60u);
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].name, instrumented[i].name);
    EXPECT_EQ(bare[i].ok, instrumented[i].ok) << bare[i].name;
    // Bit-identical doubles: == on purpose, not NEAR.
    EXPECT_EQ(bare[i].cycles, instrumented[i].cycles) << bare[i].name;
    EXPECT_EQ(bare[i].milliseconds, instrumented[i].milliseconds)
        << bare[i].name;
  }
}

// ---------------------------------------------------------------------------
// runtime::Stats as a thin view over the registry
// ---------------------------------------------------------------------------

TEST(ObsStats, PublishToMirrorsSnapshotIntoGauges) {
  runtime::Stats stats;
  stats.jobs = 4;
  stats.compile.hits = 7;
  stats.compile.misses = 3;
  stats.flexclEval.entries = 144;

  obs::Registry registry;
  stats.publishTo(registry);
  const auto gauges = registry.gauges();
  auto find = [&](const std::string& name) -> double {
    for (const auto& g : gauges) {
      if (g.name == name) return g.value;
    }
    ADD_FAILURE() << "missing gauge " << name;
    return -1;
  };
  EXPECT_EQ(find("runtime.jobs"), 4.0);
  EXPECT_EQ(find("cache.compile.hits"), 7.0);
  EXPECT_EQ(find("cache.compile.misses"), 3.0);
  EXPECT_EQ(find("cache.flexcl_eval.entries"), 144.0);
  EXPECT_EQ(find("cache.sim_eval.hits"), 0.0);
}

// TSan workload: registry snapshots are safe while workers are publishing.
TEST(ObsStats, ConcurrentSnapshotsDuringInstrumentedExploration) {
  ObsGuard guard;
  obs::setEnabled(true);

  PreparedWorkload p = prepare("rodinia", "nn", "nn");
  std::atomic<bool> done{false};
  std::thread reader([&done] {
    while (!done.load()) {
      const std::string json = obs::Registry::global().json();
      EXPECT_FALSE(json.empty());
      std::this_thread::yield();
    }
  });

  model::FlexCl flexcl(model::Device::virtex7());
  dse::ExplorerOptions opts;
  opts.jobs = 4;
  dse::Explorer explorer(flexcl, p.launch, opts);
  const auto space = dse::enumerateDesignSpace(
      p.compiled->meta.range, explorer.kernelHasBarriers());
  const dse::ExplorationResult result = explorer.explore(space);
  done.store(true);
  reader.join();
  EXPECT_FALSE(result.designs.empty());
}

}  // namespace
}  // namespace flexcl
