#include <gtest/gtest.h>

#include "ocl/lexer.h"

namespace flexcl::ocl {
namespace {

std::vector<Token> lex(const std::string& src, DiagnosticEngine* diagsOut = nullptr) {
  DiagnosticEngine diags;
  SourceManager sm(src);
  Lexer lexer(sm, diags);
  auto tokens = lexer.lexAll();
  if (diagsOut) *diagsOut = diags;
  return tokens;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::EndOfFile);
}

TEST(Lexer, Keywords) {
  auto tokens = lex("__kernel void if else for while return __global __local");
  ASSERT_GE(tokens.size(), 9u);
  EXPECT_EQ(tokens[0].kind, TokenKind::KwKernel);
  EXPECT_EQ(tokens[1].kind, TokenKind::KwVoid);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwIf);
  EXPECT_EQ(tokens[3].kind, TokenKind::KwElse);
  EXPECT_EQ(tokens[4].kind, TokenKind::KwFor);
  EXPECT_EQ(tokens[5].kind, TokenKind::KwWhile);
  EXPECT_EQ(tokens[6].kind, TokenKind::KwReturn);
  EXPECT_EQ(tokens[7].kind, TokenKind::KwGlobal);
  EXPECT_EQ(tokens[8].kind, TokenKind::KwLocal);
}

TEST(Lexer, UnprefixedAddressSpaceKeywords) {
  auto tokens = lex("global local constant kernel");
  EXPECT_EQ(tokens[0].kind, TokenKind::KwGlobal);
  EXPECT_EQ(tokens[1].kind, TokenKind::KwLocal);
  EXPECT_EQ(tokens[2].kind, TokenKind::KwConstantAS);
  EXPECT_EQ(tokens[3].kind, TokenKind::KwKernel);
}

TEST(Lexer, IdentifiersKeepSpelling) {
  auto tokens = lex("get_global_id tile_17 _x");
  EXPECT_EQ(tokens[0].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[0].text, "get_global_id");
  EXPECT_EQ(tokens[1].text, "tile_17");
  EXPECT_EQ(tokens[2].text, "_x");
}

TEST(Lexer, IntegerLiteralForms) {
  auto tokens = lex("0 42 0x1F 7u 9UL");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tokens[i].kind, TokenKind::IntLiteral) << i;
  EXPECT_EQ(tokens[2].text, "0x1F");
}

TEST(Lexer, FloatLiteralForms) {
  auto tokens = lex("1.0 3.14f .5 2e10 1.5e-3f 7f");
  for (int i = 0; i < 5; ++i) EXPECT_EQ(tokens[i].kind, TokenKind::FloatLiteral) << i;
  // "7f" lexes as float because of the f suffix.
  EXPECT_EQ(tokens[5].kind, TokenKind::FloatLiteral);
}

TEST(Lexer, OperatorsLongestMatch) {
  auto tokens = lex("<< >> <= >= == != && || += -= *= /= <<= >>= ++ -- ->");
  const TokenKind expected[] = {
      TokenKind::LessLess, TokenKind::GreaterGreater, TokenKind::LessEqual,
      TokenKind::GreaterEqual, TokenKind::EqualEqual, TokenKind::ExclaimEqual,
      TokenKind::AmpAmp, TokenKind::PipePipe, TokenKind::PlusEqual,
      TokenKind::MinusEqual, TokenKind::StarEqual, TokenKind::SlashEqual,
      TokenKind::LessLessEqual, TokenKind::GreaterGreaterEqual,
      TokenKind::PlusPlus, TokenKind::MinusMinus, TokenKind::Arrow,
  };
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = lex("a // line comment\n b /* block\ncomment */ c");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
  EXPECT_EQ(tokens[3].kind, TokenKind::EndOfFile);
}

TEST(Lexer, LocationTracking) {
  auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(Lexer, UnexpectedCharacterReported) {
  DiagnosticEngine diags;
  lex("a ` b", &diags);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Lexer, CharLiteral) {
  auto tokens = lex("'x' '\\n'");
  EXPECT_EQ(tokens[0].kind, TokenKind::CharLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::CharLiteral);
}

TEST(Lexer, EllipsisAndDots) {
  auto tokens = lex("... . a.b");
  EXPECT_EQ(tokens[0].kind, TokenKind::Ellipsis);
  EXPECT_EQ(tokens[1].kind, TokenKind::Dot);
  EXPECT_EQ(tokens[2].kind, TokenKind::Identifier);
  EXPECT_EQ(tokens[3].kind, TokenKind::Dot);
  EXPECT_EQ(tokens[4].kind, TokenKind::Identifier);
}

}  // namespace
}  // namespace flexcl::ocl
