// Tests for the serving subsystem (src/serve/): the JSON reader, the
// line-delimited protocol (golden envelopes, pinned key order, malformed-
// request error isolation), the binary codec and the versioned on-disk store
// (round-trip bit-identity across process-like restarts, corruption /
// truncation / version-mismatch quarantine — fuzzed), disk-warmed hit
// attribution, dispatcher warm-start bit-identity, out-of-order completion
// determinism across worker counts (including with tracing and structured
// logging live), the metrics/health introspection ops (pinned key order,
// latency quantiles), and the Unix-socket transport.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "interp/profiler.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/cache.h"
#include "runtime/compile_cache.h"
#include "serve/dispatcher.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/store/codec.h"
#include "serve/store/store.h"
#include "workloads/synth_args.h"

namespace flexcl {
namespace {

namespace fs = std::filesystem;

const char* kAddSource =
    "__kernel void add(__global float* a, __global float* b,"
    " __global float* c) { int i = get_global_id(0); c[i] = a[i] + b[i]; }";

/// Fresh empty store directory under the test temp dir.
std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "flexcl_serve_" + name;
  fs::remove_all(dir);
  return dir;
}

/// Restores the global observability switches on scope exit (the serve tests
/// that exercise metrics/tracing/logging share one gtest process).
struct ObsGuard {
  ~ObsGuard() {
    obs::setEnabled(false);
    obs::Tracer::global().stop();
    obs::Tracer::global().clear();
    obs::Registry::global().reset();
    obs::Log::global().close();
  }
};

/// Asserts each key appears in `json` and in the listed order.
void expectKeyOrder(const std::string& json,
                    const std::vector<const char*>& keys) {
  std::size_t pos = 0;
  for (const char* key : keys) {
    const std::size_t at = json.find(key, pos);
    ASSERT_NE(at, std::string::npos) << key << " missing/out of order in\n"
                                     << json;
    pos = at;
  }
}

std::string estimateLine(int id, int wg = 64, int pe = 1) {
  std::ostringstream os;
  os << "{\"id\": " << id << ", \"op\": \"estimate\", \"source\": \""
     << serve::jsonEscapeString(kAddSource)
     << "\", \"kernel\": \"add\", \"global\": 128, \"design\": {\"wg\": " << wg
     << ", \"pe\": " << pe << "}}";
  return os.str();
}

// --- JSON reader -----------------------------------------------------------

TEST(ServeJson, ParsesNestedValues) {
  serve::JsonValue v;
  std::string error;
  ASSERT_TRUE(serve::parseJson(
      R"({"a": [1, -2.5, true, null], "b": {"c": "x\n\"y\""}, "d": 1e3})", &v,
      &error))
      << error;
  ASSERT_TRUE(v.isObject());
  const serve::JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items.size(), 4u);
  EXPECT_DOUBLE_EQ(a->items[0].number, 1.0);
  EXPECT_DOUBLE_EQ(a->items[1].number, -2.5);
  EXPECT_TRUE(a->items[2].boolean);
  EXPECT_TRUE(a->items[3].kind == serve::JsonValue::Kind::Null);
  EXPECT_EQ(v.find("b")->find("c")->text, "x\n\"y\"");
  EXPECT_DOUBLE_EQ(v.find("d")->number, 1000.0);
}

TEST(ServeJson, RejectsMalformedInput) {
  serve::JsonValue v;
  std::string error;
  EXPECT_FALSE(serve::parseJson("{\"a\": }", &v, &error));
  EXPECT_FALSE(serve::parseJson("{\"a\": 1,}", &v, &error));
  EXPECT_FALSE(serve::parseJson("[1, 2", &v, &error));
  EXPECT_FALSE(serve::parseJson("\"unterminated", &v, &error));
  EXPECT_FALSE(serve::parseJson("{} trailing", &v, &error));
  EXPECT_FALSE(serve::parseJson("", &v, &error));
}

// --- protocol --------------------------------------------------------------

TEST(ServeProtocol, ParsesEstimateRequestAndIgnoresUnknownFields) {
  const serve::ParsedRequest p = serve::parseRequest(
      R"({"id": 7, "op": "estimate", "source": "k", "kernel": "k",)"
      R"( "global": 512, "future_field": [1, 2],)"
      R"( "design": {"wg": 32, "pe": 4, "mode": "barrier"}})");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.request.id, 7u);
  EXPECT_EQ(p.request.global, 512u);
  EXPECT_EQ(p.request.design.workGroupSize[0], 32u);
  EXPECT_EQ(p.request.design.peParallelism, 4);
  EXPECT_EQ(p.request.design.commMode, model::CommMode::Barrier);
}

TEST(ServeProtocol, RecoversIdFromInvalidRequests) {
  const serve::ParsedRequest p =
      serve::parseRequest(R"({"id": 41, "op": "estimate"})");
  EXPECT_FALSE(p.ok);
  EXPECT_EQ(p.request.id, 41u);  // error response stays correlatable
  EXPECT_NE(p.error.find("source"), std::string::npos);
}

TEST(ServeProtocol, GoldenResponseEnvelopes) {
  // Pinned key order (schema_version first) — the serve analogue of the
  // lint/explain golden-JSON policy. Any change must bump kServeSchemaVersion.
  EXPECT_EQ(serve::renderResponse(3, "ping", "\"pong\""),
            "{\"schema_version\": 1, \"id\": 3, \"op\": \"ping\","
            " \"ok\": true, \"result\": \"pong\"}");
  EXPECT_EQ(serve::renderErrorResponse(4, "estimate", "boom \"x\""),
            "{\"schema_version\": 1, \"id\": 4, \"op\": \"estimate\","
            " \"ok\": false, \"error\": \"boom \\\"x\\\"\"}");
  model::DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  EXPECT_EQ(serve::renderDesign(dp),
            "{\"wg\": 64, \"wg_y\": 1, \"pipeline\": true,"
            " \"loop_pipeline\": false, \"wg_pipeline\": false, \"pe\": 1,"
            " \"cu\": 1, \"vector_width\": 1, \"mode\": \"pipeline\"}");
}

// --- MemoCache seeding / warm-hit attribution ------------------------------

TEST(ServeWarmHits, SeededEntriesCountAsDiskWarmed) {
  runtime::MemoCache<int, int> cache;
  EXPECT_TRUE(cache.seed(1, 10));
  EXPECT_FALSE(cache.seed(1, 11)) << "existing entry must win over a seed";
  EXPECT_EQ(*cache.getOrCompute(1, [] { return -1; }), 10);
  EXPECT_EQ(*cache.getOrCompute(2, [] { return 20; }), 20);
  EXPECT_EQ(*cache.getOrCompute(2, [] { return -1; }), 20);
  const runtime::CounterSnapshot c = cache.counters();
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.warmHits, 1u);  // only the seeded entry's hit
  EXPECT_EQ(c.misses, 1u);
  // Aggregation and delta keep the warm attribution.
  runtime::CounterSnapshot later = c;
  later.hits = 5;
  later.warmHits = 3;
  const runtime::CounterSnapshot d = later.deltaSince(c);
  EXPECT_EQ(d.hits, 3u);
  EXPECT_EQ(d.warmHits, 2u);
  EXPECT_NE(c.json().find("\"warm_hits\": 1"), std::string::npos);
  EXPECT_NE(c.str().find("1 disk-warmed"), std::string::npos);
}

// --- codec -----------------------------------------------------------------

TEST(ServeCodec, EstimateRoundTripsBitIdentically) {
  runtime::CompileCache cc;
  const auto compiled = cc.compile(kAddSource, "add");
  ASSERT_TRUE(compiled->ok) << compiled->error;
  std::vector<std::vector<std::uint8_t>> buffers;
  model::LaunchInfo launch;
  launch.fn = compiled->fn;
  launch.range.global = {128, 1, 1};
  workloads::synthesiseArgs(*compiled->fn, 128, &buffers, &launch.args);
  launch.buffers = &buffers;
  model::FlexCl flexcl(model::Device::virtex7());
  model::DesignPoint dp;
  dp.workGroupSize = {32, 1, 1};
  dp.peParallelism = 2;
  const model::Estimate est = flexcl.estimate(launch, dp);
  ASSERT_TRUE(est.ok) << est.error;

  serve::ByteWriter w;
  serve::encodeEstimate(w, est);
  serve::ByteReader r(w.bytes());
  model::Estimate back;
  ASSERT_TRUE(serve::decodeEstimate(r, &back));
  EXPECT_EQ(back.ok, est.ok);
  EXPECT_EQ(back.cycles, est.cycles);  // exact, not approximate
  EXPECT_EQ(back.milliseconds, est.milliseconds);
  EXPECT_EQ(back.breakdown.memory, est.breakdown.memory);
  EXPECT_EQ(back.pe.iiComp, est.pe.iiComp);
  EXPECT_EQ(back.memory.lMemWi, est.memory.lMemWi);
  serve::ByteWriter w2;
  serve::encodeEstimate(w2, back);
  EXPECT_EQ(w.bytes(), w2.bytes()) << "re-encoding must be bit-identical";

  // The profile that fed this estimate round-trips too.
  const interp::KernelProfile& profile = flexcl.profileFor(launch, dp);
  serve::ByteWriter pw;
  serve::encodeProfile(pw, profile);
  serve::ByteReader pr(pw.bytes());
  interp::KernelProfile pback;
  ASSERT_TRUE(serve::decodeProfile(pr, &pback));
  EXPECT_EQ(pback.globalTrace.size(), profile.globalTrace.size());
  EXPECT_EQ(pback.profiledWorkItems, profile.profiledWorkItems);
  serve::ByteWriter pw2;
  serve::encodeProfile(pw2, pback);
  EXPECT_EQ(pw.bytes(), pw2.bytes());
}

TEST(ServeCodec, RejectsTruncatedAndTrailingPayloads) {
  model::Estimate est;
  est.ok = true;
  est.cycles = 123.5;
  serve::ByteWriter w;
  serve::encodeEstimate(w, est);
  for (std::size_t cut : {std::size_t{0}, std::size_t{1}, w.bytes().size() / 2,
                          w.bytes().size() - 1}) {
    std::vector<std::uint8_t> bytes(w.bytes().begin(),
                                    w.bytes().begin() + static_cast<long>(cut));
    serve::ByteReader r(bytes);
    model::Estimate out;
    EXPECT_FALSE(serve::decodeEstimate(r, &out)) << "cut at " << cut;
  }
  std::vector<std::uint8_t> extra = w.bytes();
  extra.push_back(0);
  serve::ByteReader r(extra);
  model::Estimate out;
  EXPECT_FALSE(serve::decodeEstimate(r, &out)) << "trailing bytes";
}

// --- store -----------------------------------------------------------------

TEST(ServeStore, RoundTripsAcrossReopen) {
  const std::string dir = freshDir("roundtrip");
  const std::vector<std::uint8_t> payload = {1, 2, 3, 250, 255, 0, 7};
  {
    serve::Store store(dir);
    ASSERT_TRUE(store.ok()) << store.error();
    ASSERT_TRUE(store.save(serve::Store::Family::Response, 0xabcdeF12u, 1,
                           payload));
  }
  serve::Store reopened(dir);  // a new "process"
  ASSERT_TRUE(reopened.ok());
  const auto back =
      reopened.load(serve::Store::Family::Response, 0xabcdeF12u, 1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
  EXPECT_FALSE(
      reopened.load(serve::Store::Family::Response, 0x9999u, 1).has_value());
  EXPECT_EQ(reopened.stats().totalEntries(), 1u);
  EXPECT_EQ(reopened.verify(), 0u);
  EXPECT_EQ(reopened.clear(), 1u);
  EXPECT_EQ(reopened.stats().totalEntries(), 0u);
}

TEST(ServeStore, VersionMismatchQuarantines) {
  const std::string dir = freshDir("version");
  serve::Store store(dir);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store.save(serve::Store::Family::Profile, 5, /*version=*/1,
                         {9, 9, 9}));
  EXPECT_FALSE(store.load(serve::Store::Family::Profile, 5, /*version=*/2)
                   .has_value());
  const serve::Store::StoreStats stats = store.stats();
  EXPECT_EQ(stats.totalEntries(), 0u);
  EXPECT_EQ(stats.totalQuarantined(), 1u);
  // The quarantined file is inert: a fresh save works, loadAll skips it.
  ASSERT_TRUE(store.save(serve::Store::Family::Profile, 5, 1, {1}));
  int seen = 0;
  store.loadAll(serve::Store::Family::Profile, 1,
                [&](std::uint64_t, const std::vector<std::uint8_t>&) { ++seen; });
  EXPECT_EQ(seen, 1);
}

TEST(ServeStore, FuzzedCorruptionNeverLoads) {
  const std::string dir = freshDir("fuzz");
  serve::Store store(dir);
  ASSERT_TRUE(store.ok());
  std::vector<std::uint8_t> payload(64);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 1);
  }
  const std::uint64_t key = 0x1234567890abcdefull;
  ASSERT_TRUE(store.save(serve::Store::Family::SimEval, key, 1, payload));
  const std::string path =
      dir + "/sim/1234567890abcdef.fxe";
  std::vector<std::uint8_t> good;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(in));
    good.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  std::uint64_t quarantined = 0;
  // Bit flips across the whole file: header fields, key, checksum, payload.
  for (std::size_t pos = 0; pos < good.size(); pos += 7) {
    std::vector<std::uint8_t> bad = good;
    bad[pos] ^= 0x40;
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bad.data()),
                static_cast<long>(bad.size()));
    }
    EXPECT_FALSE(store.load(serve::Store::Family::SimEval, key, 1).has_value())
        << "bit flip at " << pos << " must not load";
    ++quarantined;
    fs::remove(path + ".quar");
    ASSERT_TRUE(store.save(serve::Store::Family::SimEval, key, 1, payload));
  }
  // Truncations, including mid-header.
  for (std::size_t size : {std::size_t{0}, std::size_t{3}, std::size_t{39},
                           good.size() - 1}) {
    std::vector<std::uint8_t> bad(good.begin(),
                                  good.begin() + static_cast<long>(size));
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(bad.data()),
                static_cast<long>(bad.size()));
    }
    EXPECT_FALSE(store.load(serve::Store::Family::SimEval, key, 1).has_value())
        << "truncation to " << size << " must not load";
    fs::remove(path + ".quar");
    ASSERT_TRUE(store.save(serve::Store::Family::SimEval, key, 1, payload));
  }
  EXPECT_GT(quarantined, 0u);
  // And after all that abuse, an intact entry still loads.
  EXPECT_TRUE(store.load(serve::Store::Family::SimEval, key, 1).has_value());
}

// --- dispatcher ------------------------------------------------------------

TEST(ServeDispatcher, MalformedRequestsAreIsolated) {
  serve::Dispatcher dispatcher;
  const std::string bad = dispatcher.handleLine("{\"id\": 13, \"op\": 5}");
  EXPECT_NE(bad.find("\"id\": 13"), std::string::npos);
  EXPECT_NE(bad.find("\"ok\": false"), std::string::npos);
  EXPECT_NE(dispatcher.handleLine("not json at all").find("\"ok\": false"),
            std::string::npos);
  const std::string unknownOp =
      dispatcher.handleLine("{\"id\": 1, \"op\": \"frobnicate\"}");
  EXPECT_NE(unknownOp.find("unknown op"), std::string::npos);
  const std::string badDevice = dispatcher.handleLine(
      "{\"id\": 2, \"op\": \"estimate\", \"source\": \"x\","
      " \"kernel\": \"k\", \"device\": \"stratix\"}");
  EXPECT_NE(badDevice.find("unknown device"), std::string::npos);
  // A broken kernel fails with diagnostics, not a crash...
  const std::string broken = dispatcher.handleLine(
      "{\"id\": 3, \"op\": \"estimate\", \"source\": \"__kernel void k( {\","
      " \"kernel\": \"k\"}");
  EXPECT_NE(broken.find("\"ok\": false"), std::string::npos);
  // ...and the dispatcher still answers the next request normally.
  const std::string good = dispatcher.handleLine(estimateLine(4));
  EXPECT_NE(good.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(dispatcher.handledOk(), 1u);
  EXPECT_EQ(dispatcher.handledError(), 5u);  // parse errors count too
}

TEST(ServeDispatcher, WarmRestartIsBitIdenticalAndDiskAttributed) {
  const std::string dir = freshDir("warm");
  const std::vector<std::string> lines = {
      estimateLine(1, 64, 1), estimateLine(2, 32, 2),
      "{\"id\": 3, \"op\": \"lint\", \"source\": \"" +
          serve::jsonEscapeString(kAddSource) +
          "\", \"kernel\": \"add\", \"global\": 128}",
      "{\"id\": 4, \"op\": \"explain\", \"source\": \"" +
          serve::jsonEscapeString(kAddSource) +
          "\", \"kernel\": \"add\", \"global\": 128, \"design\": {\"wg\": 64}}",
  };
  std::vector<std::string> cold;
  {
    serve::DispatcherOptions opts;
    opts.storeDir = dir;
    serve::Dispatcher d(opts);
    ASSERT_TRUE(d.storeOk()) << d.storeError();
    for (const std::string& line : lines) cold.push_back(d.handleLine(line));
    const runtime::Stats s = d.stats();
    EXPECT_EQ(s.flexclEval.warmHits, 0u);
    EXPECT_GT(s.flexclEval.misses, 0u);
  }
  // A new dispatcher over the same store = a restarted process.
  serve::DispatcherOptions opts;
  opts.storeDir = dir;
  serve::Dispatcher d2(opts);
  ASSERT_TRUE(d2.storeOk());
  std::vector<std::string> warm;
  for (const std::string& line : lines) warm.push_back(d2.handleLine(line));
  EXPECT_EQ(cold, warm) << "warm responses must be byte-identical to cold";
  const runtime::Stats s = d2.stats();
  EXPECT_EQ(s.flexclEval.misses, 0u) << "every estimate must come from disk";
  EXPECT_EQ(s.flexclEval.warmHits, s.flexclEval.hits);
  EXPECT_GT(s.flexclEval.warmHits, 0u);
  EXPECT_GT(d2.responseCounters().warmHits, 0u) << "lint/explain from disk";
  EXPECT_EQ(s.analysis.misses, 0u)
      << "warm estimates must not rebuild schedules";
}

TEST(ServeDispatcher, QuarantinedEntryRecomputesIdentically) {
  const std::string dir = freshDir("quar");
  std::string cold;
  {
    serve::DispatcherOptions opts;
    opts.storeDir = dir;
    serve::Dispatcher d(opts);
    cold = d.handleLine(estimateLine(9));
  }
  // Corrupt every flexcl eval entry on disk.
  int corrupted = 0;
  for (const auto& entry : fs::directory_iterator(dir + "/flexcl")) {
    std::fstream f(entry.path(),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(45);  // inside the payload
    char byte = 0x7f;
    f.write(&byte, 1);
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0);
  serve::DispatcherOptions opts;
  opts.storeDir = dir;
  serve::Dispatcher d2(opts);
  const std::string warm = d2.handleLine(estimateLine(9));
  EXPECT_EQ(cold, warm) << "a quarantined entry must recompute, not corrupt";
  EXPECT_EQ(d2.stats().flexclEval.warmHits, 0u);
  serve::Store store(dir);
  EXPECT_GT(store.stats().totalQuarantined(), 0u);
}

TEST(ServeDispatcher, ExploreSharesEstimateCacheEntries) {
  serve::Dispatcher d;
  const std::string explore =
      "{\"id\": 1, \"op\": \"explore\", \"source\": \"" +
      serve::jsonEscapeString(kAddSource) +
      "\", \"kernel\": \"add\", \"global\": 128}";
  const std::string first = d.handleLine(explore);
  ASSERT_NE(first.find("\"ok\": true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"best_design\""), std::string::npos);
  const runtime::Stats afterFirst = d.stats();
  EXPECT_GT(afterFirst.flexclEval.misses, 1u);
  // Re-exploring is pure hits; estimating one of the swept designs is a hit.
  const std::string second = d.handleLine(explore);
  EXPECT_EQ(first, second);
  const runtime::Stats afterSecond = d.stats();
  EXPECT_EQ(afterSecond.flexclEval.misses, afterFirst.flexclEval.misses);
  const std::string est = d.handleLine(estimateLine(2, 32, 2));
  EXPECT_NE(est.find("\"ok\": true"), std::string::npos);
  EXPECT_EQ(d.stats().flexclEval.misses, afterSecond.flexclEval.misses)
      << "estimate of a swept design must hit the explore's cache entry";
}

// --- metrics / health introspection (DESIGN.md §14) ------------------------

TEST(ServeMetricsHealth, GoldenKeyOrderAndSchemaVersionArePinned) {
  ObsGuard guard;
  serve::Dispatcher d;  // no store
  const std::string metrics =
      d.handleLine("{\"id\": 1, \"op\": \"metrics\"}");
  // Same schema_version-1 envelope as every other op, then the pinned
  // result key order. Any key change must bump kServeSchemaVersion.
  EXPECT_EQ(metrics.rfind("{\"schema_version\": 1, \"id\": 1,"
                          " \"op\": \"metrics\", \"ok\": true,"
                          " \"result\": {\"uptime_s\": ",
                          0),
            0u)
      << metrics;
  expectKeyOrder(metrics,
                 {"\"uptime_s\"", "\"requests\"", "\"ok\": 0", "\"errors\"",
                  "\"in_flight\"", "\"registry\"", "\"counters\"",
                  "\"gauges\"", "\"histograms\""});
  EXPECT_EQ(metrics.find("\"store\""), std::string::npos)
      << "no store attached => no store section";

  const std::string health = d.handleLine("{\"id\": 2, \"op\": \"health\"}");
  EXPECT_EQ(health.rfind("{\"schema_version\": 1, \"id\": 2,"
                         " \"op\": \"health\", \"ok\": true,"
                         " \"result\": {\"status\": \"ok\", \"uptime_s\": ",
                         0),
            0u)
      << health;
  expectKeyOrder(health, {"\"status\"", "\"uptime_s\"", "\"requests\": 1",
                          "\"ok\": 1", "\"errors\": 0", "\"in_flight\"",
                          "\"store\": {\"present\": false}"});
  EXPECT_EQ(d.handledOk(), 2u) << "metrics/health count as handled requests";
}

TEST(ServeMetricsHealth, StoreSectionAndDegradedStatus) {
  ObsGuard guard;
  const std::string dir = freshDir("introspect");
  serve::DispatcherOptions opts;
  opts.storeDir = dir;
  serve::Dispatcher d(opts);
  ASSERT_TRUE(d.storeOk()) << d.storeError();
  ASSERT_NE(d.handleLine(estimateLine(1)).find("\"ok\": true"),
            std::string::npos);

  const std::string metrics =
      d.handleLine("{\"id\": 2, \"op\": \"metrics\"}");
  expectKeyOrder(metrics, {"\"registry\"", "\"store\": {\"dir\": ",
                           "\"entries\"", "\"bytes\"", "\"quarantined\": 0"});
  const std::string health = d.handleLine("{\"id\": 3, \"op\": \"health\"}");
  EXPECT_NE(health.find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(health.find("\"store\": {\"present\": true, \"entries\": "),
            std::string::npos);

  // Quarantined entries degrade health (the daemon still answers).
  d.store()->save(serve::Store::Family::Profile, 99, 1, {1, 2, 3});
  EXPECT_FALSE(
      d.store()->load(serve::Store::Family::Profile, 99, 2).has_value());
  const std::string degraded =
      d.handleLine("{\"id\": 4, \"op\": \"health\"}");
  EXPECT_NE(degraded.find("\"status\": \"degraded\""), std::string::npos);
  EXPECT_NE(degraded.find("\"quarantined\": 1"), std::string::npos);
}

TEST(ServeMetricsHealth, LatencyQuantilesAppearAfterServedTraffic) {
  ObsGuard guard;
  obs::setEnabled(true);
  // jobs=1 executes inline in submission order, so the metrics response is
  // guaranteed to observe the preceding estimates' latency samples.
  const std::string out = [&] {
    serve::ServerOptions opts;
    opts.jobs = 1;
    serve::Server server(opts);
    std::istringstream in(estimateLine(1) + "\n" + estimateLine(2, 32, 2) +
                          "\n{\"id\": 3, \"op\": \"metrics\"}\n");
    std::ostringstream os;
    EXPECT_EQ(server.run(in, os), 0);
    return os.str();
  }();
  std::string metricsLine;
  std::istringstream split(out);
  for (std::string line; std::getline(split, line);) {
    if (line.find("\"op\": \"metrics\"") != std::string::npos) {
      metricsLine = line;
    }
  }
  ASSERT_FALSE(metricsLine.empty()) << out;
  // The per-kind request histogram and the transport's queue-wait histogram
  // both carry quantile snapshots.
  expectKeyOrder(metricsLine,
                 {"\"serve.queue_wait_us\": {\"count\": 3",
                  "\"serve.request.estimate.latency_us\": {\"count\": 2",
                  "\"p50\"", "\"p90\"", "\"p99\"", "\"max\"", "\"mean\""});
}

// --- server ----------------------------------------------------------------

std::vector<std::string> runServer(int jobs, const std::string& input) {
  serve::ServerOptions opts;
  opts.jobs = jobs;
  serve::Server server(opts);
  std::istringstream in(input);
  std::ostringstream out;
  EXPECT_EQ(server.run(in, out), 0);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream split(out.str());
  while (std::getline(split, line)) lines.push_back(line);
  return lines;
}

TEST(ServeServer, OutOfOrderCompletionIsDeterministicAcrossJobs) {
  std::ostringstream input;
  for (int i = 0; i < 6; ++i) {
    input << estimateLine(i + 1, i % 2 == 0 ? 64 : 32, 1 + i % 3) << "\n";
  }
  input << "{\"id\": 99, \"op\": \"bogus\"}\n";  // error isolation under load
  std::vector<std::string> serial = runServer(1, input.str());
  std::vector<std::string> parallel = runServer(4, input.str());
  ASSERT_EQ(serial.size(), 7u);
  ASSERT_EQ(parallel.size(), 7u);
  // Responses may arrive in any order; sorted by the (unique) id prefix they
  // must be byte-identical.
  std::sort(serial.begin(), serial.end());
  std::sort(parallel.begin(), parallel.end());
  EXPECT_EQ(serial, parallel);
}

// PR 8 extension of the determinism contract: the same mix, replayed with
// counters, histograms, request-scoped tracing and the structured log all
// live, still answers byte-identically at any worker count. metrics/health
// are deliberately NOT in the mix — their results are timing-dependent by
// design and excluded from byte-identity (see serve/protocol.h).
TEST(ServeServer, DeterministicAcrossJobsWithTracingAndLogging) {
  ObsGuard guard;
  obs::setEnabled(true);
  obs::Tracer::global().start();
  const std::string logPath =
      ::testing::TempDir() + "flexcl_serve_determinism_log.jsonl";

  std::ostringstream input;
  for (int i = 0; i < 6; ++i) {
    input << estimateLine(i + 1, i % 2 == 0 ? 64 : 32, 1 + i % 3) << "\n";
  }
  input << "{\"id\": 99, \"op\": \"bogus\"}\n";

  auto instrumentedRun = [&](int jobs) {
    EXPECT_TRUE(obs::Log::global().open(logPath, /*slowUs=*/-1));
    std::vector<std::string> lines = runServer(jobs, input.str());
    obs::Log::global().close();
    std::sort(lines.begin(), lines.end());
    return lines;
  };
  const std::vector<std::string> serial = instrumentedRun(1);
  const std::vector<std::string> parallel = instrumentedRun(4);
  obs::Tracer::global().stop();

  ASSERT_EQ(serial.size(), 7u);
  EXPECT_EQ(serial, parallel);

  // The instrumentation actually observed the traffic: request-tagged spans
  // across the workers, latency samples per kind, and log lines with both
  // lifecycle and per-request events (including the parse error).
  std::set<std::uint64_t> taggedRequests;
  for (const auto& span : obs::Tracer::global().spans()) {
    if (span.requestId != 0) taggedRequests.insert(span.requestId);
  }
  EXPECT_GE(taggedRequests.size(), 7u) << "spans must correlate by request id";
  EXPECT_EQ(obs::Registry::global()
                .histogram("serve.request.estimate.latency_us")
                .snapshot()
                .count,
            12u);  // 6 estimates x 2 runs
  std::ifstream in(logPath);
  std::string line;
  int requestEvents = 0, errorEvents = 0;
  while (std::getline(in, line)) {
    if (line.find("\"event\": \"request\"") != std::string::npos) {
      ++requestEvents;
      EXPECT_NE(line.find("\"queue_wait_us\""), std::string::npos) << line;
    }
    if (line.find("\"level\": \"error\"") != std::string::npos) ++errorEvents;
  }
  EXPECT_EQ(requestEvents, 7) << "the log holds the parallel run's events";
  EXPECT_GE(errorEvents, 1) << "the bogus request logs at level error";
  std::remove(logPath.c_str());
}

TEST(ServeServer, UnixSocketServesAndShutsDown) {
  const std::string path = ::testing::TempDir() + "flexcl_serve_test.sock";
  fs::remove(path);
  serve::ServerOptions opts;
  opts.jobs = 2;
  opts.socketPath = path;
  serve::Server server(opts);
  std::istringstream in("");  // daemon mode: EOF on stdin keeps serving
  std::ostringstream out;
  std::thread serverThread([&] { EXPECT_EQ(server.run(in, out), 0); });

  int fd = -1;
  for (int attempt = 0; attempt < 200; ++attempt) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      break;
    }
    ::close(fd);
    fd = -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_GE(fd, 0) << "could not connect to " << path;

  const std::string requests = "{\"id\": 1, \"op\": \"ping\"}\n" +
                               estimateLine(2) +
                               "\n{\"id\": 3, \"op\": \"shutdown\"}\n";
  ASSERT_EQ(::send(fd, requests.data(), requests.size(), 0),
            static_cast<ssize_t>(requests.size()));
  std::string received;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    received.append(chunk, static_cast<std::size_t>(n));
    if (std::count(received.begin(), received.end(), '\n') >= 3) break;
  }
  ::close(fd);
  serverThread.join();

  EXPECT_NE(received.find("\"result\": \"pong\""), std::string::npos);
  EXPECT_NE(received.find("\"op\": \"estimate\", \"ok\": true"),
            std::string::npos);
  EXPECT_NE(received.find("\"result\": \"bye\""), std::string::npos);
  EXPECT_FALSE(fs::exists(path)) << "socket file must be unlinked on stop";
}

}  // namespace
}  // namespace flexcl
