// Tests for the parallel evaluation runtime (src/runtime/): thread pool
// lifecycle and exception propagation, compute-once memoization with
// hit/miss/evict accounting, the compile cache, and — the property the whole
// subsystem is built around — bit-identical exploration results regardless
// of worker count. The concurrency tests double as the TSan workload of the
// CI's sanitizer job.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "dse/explorer.h"
#include "ir/lower.h"
#include "runtime/cache.h"
#include "runtime/compile_cache.h"
#include "runtime/eval_cache.h"
#include "runtime/thread_pool.h"

namespace flexcl {
namespace {

TEST(ThreadPool, RunsSubmittedJobsOnWorkers) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4);

  std::atomic<int> ran{0};
  std::vector<std::future<int>> results;
  for (int i = 0; i < 32; ++i) {
    results.push_back(pool.submit([&ran, i] {
      ran.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedJobs) {
  std::atomic<int> ran{0};
  {
    runtime::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1);
      });
    }
    // Destructor: stop accepting, finish the queue, join.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SubmitPropagatesExceptionToCaller) {
  runtime::ThreadPool pool(2);
  std::future<void> failing =
      pool.submit([]() -> void { throw std::runtime_error("job failed"); });
  try {
    failing.get();
    FAIL() << "expected the job's exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job failed");
  }
  // The pool survives a failing job.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> counts(kN);
  pool.parallelFor(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForRethrowsLowestIndexedFailure) {
  runtime::ThreadPool pool(4);
  try {
    pool.parallelFor(100, [](std::size_t i) {
      if (i >= 5) throw std::runtime_error("failed at " + std::to_string(i));
    });
    FAIL() << "expected a failure";
  } catch (const std::runtime_error& e) {
    // Indices are handed out in order and every index below a failure is
    // attempted, so the winner is the lowest failing index — deterministic.
    EXPECT_STREQ(e.what(), "failed at 5");
  }
}

TEST(MemoCache, CountsHitsAndMisses) {
  runtime::MemoCache<int, int> cache;
  std::atomic<int> computed{0};
  auto ten = [&] {
    computed.fetch_add(1);
    return 10;
  };
  EXPECT_EQ(*cache.getOrCompute(1, ten), 10);
  EXPECT_EQ(*cache.getOrCompute(1, ten), 10);
  EXPECT_EQ(*cache.getOrCompute(2, ten), 10);
  EXPECT_EQ(computed.load(), 2);

  const runtime::CounterSnapshot c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.entries, 2u);
  EXPECT_EQ(c.evictions, 0u);
}

TEST(MemoCache, ComputesOncePerKeyUnderContention) {
  runtime::MemoCache<int, int> cache;
  runtime::ThreadPool pool(8);
  std::atomic<int> computed{0};
  pool.parallelFor(64, [&](std::size_t) {
    auto value = cache.getOrCompute(42, [&] {
      computed.fetch_add(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      return 4242;
    });
    EXPECT_EQ(*value, 4242);
  });
  EXPECT_EQ(computed.load(), 1);
  EXPECT_EQ(cache.counters().lookups(), 64u);
}

TEST(MemoCache, EvictsFifoBeyondCapacity) {
  runtime::MemoCache<int, int> cache(/*capacity=*/2);
  for (int key = 0; key < 4; ++key) {
    cache.getOrCompute(key, [key] { return key; });
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.counters().evictions, 2u);
  // FIFO: the oldest keys are gone, the newest remain.
  EXPECT_EQ(cache.peek(0), nullptr);
  EXPECT_EQ(cache.peek(1), nullptr);
  ASSERT_NE(cache.peek(2), nullptr);
  ASSERT_NE(cache.peek(3), nullptr);
}

TEST(MemoCache, CachesAndRethrowsFailures) {
  runtime::MemoCache<int, int> cache;
  std::atomic<int> computed{0};
  auto failing = [&]() -> int {
    computed.fetch_add(1);
    throw std::runtime_error("compute failed");
  };
  EXPECT_THROW(cache.getOrCompute(1, failing), std::runtime_error);
  // The failure is memoized: no recompute, same exception.
  EXPECT_THROW(cache.getOrCompute(1, failing), std::runtime_error);
  EXPECT_EQ(computed.load(), 1);
}

TEST(CompileCache, MemoizesByPreprocessedSourceKernelAndOptions) {
  const std::string source =
      "__kernel void k(__global float* a) { a[get_global_id(0)] = N; }\n";
  runtime::CompileCache cache;
  auto first = cache.compile(source, "k", {{"N", "1.0f"}});
  auto second = cache.compile(source, "k", {{"N", "1.0f"}});
  ASSERT_TRUE(first->ok) << first->error;
  EXPECT_EQ(first.get(), second.get());  // same cached compilation
  EXPECT_EQ(cache.counters().hits, 1u);
  EXPECT_EQ(cache.counters().misses, 1u);

  // Different build options are a different kernel.
  auto other = cache.compile(source, "k", {{"N", "2.0f"}});
  ASSERT_TRUE(other->ok) << other->error;
  EXPECT_NE(other->hash, first->hash);
  EXPECT_EQ(cache.counters().misses, 2u);

  // Failures are cached too.
  auto broken = cache.compile("__kernel void k(", "k");
  EXPECT_FALSE(broken->ok);
  EXPECT_FALSE(broken->error.empty());
  EXPECT_EQ(cache.compile("__kernel void k(", "k").get(), broken.get());
}

/// Small kernel + launch shared by the Explorer-level tests.
struct ExplorerFixture {
  std::unique_ptr<ir::CompiledProgram> program;
  std::vector<std::vector<std::uint8_t>> buffers;
  model::LaunchInfo launch;

  ExplorerFixture() {
    DiagnosticEngine diags;
    program = ir::compileOpenCl(
        "__kernel void k(__global const float* a, __global float* b) {\n"
        "  int i = get_global_id(0);\n"
        "  b[i] = sqrt(a[i] * a[i] + 2.0f);\n"
        "}\n",
        diags);
    EXPECT_TRUE(program) << diags.str();
    buffers = {std::vector<std::uint8_t>(256 * 4, 1),
               std::vector<std::uint8_t>(256 * 4)};
    launch.fn = program->module->functions().front().get();
    launch.range.global = {256, 1, 1};
    launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    launch.buffers = &buffers;
  }

  [[nodiscard]] std::vector<model::DesignPoint> space() const {
    dse::SpaceOptions opts;
    opts.workGroupSizes = {32, 64};
    opts.peParallelism = {1, 4};
    opts.computeUnits = {1, 2};
    return dse::enumerateDesignSpace(launch.range, /*kernelHasBarriers=*/false,
                                     opts);
  }
};

dse::ExplorationResult exploreWithJobs(const ExplorerFixture& f, int jobs,
                                       runtime::EvalCache* evalCache = nullptr,
                                       model::ModelOptions modelOpts = {}) {
  model::FlexCl flexcl(model::Device::virtex7(), modelOpts);
  dse::ExplorerOptions opts;
  opts.jobs = jobs;
  opts.evalCache = evalCache;
  dse::Explorer explorer(flexcl, f.launch, opts);
  return explorer.explore(f.space());
}

TEST(ExplorerRuntime, ResultsAreIdenticalAcrossThreadCounts) {
  ExplorerFixture f;
  const dse::ExplorationResult serial = exploreWithJobs(f, 1);
  const dse::ExplorationResult parallel = exploreWithJobs(f, 4);

  // Byte-identical designs: every evaluator is pure and results land by
  // index, so no field — not even a floating-point tail bit — may differ.
  ASSERT_EQ(serial.designs.size(), parallel.designs.size());
  for (std::size_t i = 0; i < serial.designs.size(); ++i) {
    const dse::EvaluatedDesign& a = serial.designs[i];
    const dse::EvaluatedDesign& b = parallel.designs[i];
    EXPECT_EQ(a.design, b.design) << "design " << i;
    EXPECT_EQ(a.flexclCycles, b.flexclCycles) << "design " << i;
    EXPECT_EQ(a.simCycles, b.simCycles) << "design " << i;
    EXPECT_EQ(a.sdaccelCycles, b.sdaccelCycles) << "design " << i;
    EXPECT_EQ(a.sdaccelMinutes, b.sdaccelMinutes) << "design " << i;
  }
  EXPECT_EQ(serial.bestBySim, parallel.bestBySim);
  EXPECT_EQ(serial.bestByFlexcl, parallel.bestByFlexcl);
  EXPECT_EQ(serial.pickGapPct, parallel.pickGapPct);
  EXPECT_EQ(serial.speedupVsBaseline, parallel.speedupVsBaseline);
  EXPECT_EQ(serial.avgFlexclErrorPct, parallel.avgFlexclErrorPct);
  EXPECT_EQ(serial.avgSdaccelErrorPct, parallel.avgSdaccelErrorPct);
  EXPECT_EQ(serial.sdaccelFailRatePct, parallel.sdaccelFailRatePct);
  EXPECT_EQ(serial.sdaccelMinutes, parallel.sdaccelMinutes);
}

TEST(ExplorerRuntime, SharedEvalCacheMakesResweepsPureHits) {
  ExplorerFixture f;
  runtime::EvalCache evalCache;
  const dse::ExplorationResult first = exploreWithJobs(f, 2, &evalCache);
  const std::uint64_t missesAfterFirst =
      evalCache.flexclCounters().misses + evalCache.simCounters().misses +
      evalCache.sdaccelCounters().misses;
  EXPECT_GT(missesAfterFirst, 0u);

  const dse::ExplorationResult second = exploreWithJobs(f, 2, &evalCache);
  const std::uint64_t missesAfterSecond =
      evalCache.flexclCounters().misses + evalCache.simCounters().misses +
      evalCache.sdaccelCounters().misses;
  // Identical kernel, launch, device, and space: nothing new to compute.
  EXPECT_EQ(missesAfterSecond, missesAfterFirst);
  EXPECT_GT(evalCache.flexclCounters().hits, 0u);

  ASSERT_EQ(first.designs.size(), second.designs.size());
  for (std::size_t i = 0; i < first.designs.size(); ++i) {
    EXPECT_EQ(first.designs[i].flexclCycles, second.designs[i].flexclCycles);
    EXPECT_EQ(first.designs[i].simCycles, second.designs[i].simCycles);
  }
}

TEST(ExplorerRuntime, AnalysisCacheAndJobsDoNotChangeResults) {
  // Crosses both knobs at once: serial + analysis cache (the default) vs
  // 4 workers + cache disabled. The memoized stages are pure, so every
  // result field must match to the last bit.
  ExplorerFixture f;
  model::ModelOptions uncached;
  uncached.analysisCache = false;
  const dse::ExplorationResult a = exploreWithJobs(f, 1);
  const dse::ExplorationResult b =
      exploreWithJobs(f, 4, /*evalCache=*/nullptr, uncached);

  ASSERT_EQ(a.designs.size(), b.designs.size());
  for (std::size_t i = 0; i < a.designs.size(); ++i) {
    EXPECT_EQ(a.designs[i].flexclCycles, b.designs[i].flexclCycles) << i;
    EXPECT_EQ(a.designs[i].simCycles, b.designs[i].simCycles) << i;
    EXPECT_EQ(a.designs[i].sdaccelCycles, b.designs[i].sdaccelCycles) << i;
  }
  EXPECT_EQ(a.bestBySim, b.bestBySim);
  EXPECT_EQ(a.bestByFlexcl, b.bestByFlexcl);
  EXPECT_EQ(a.pickGapPct, b.pickGapPct);
  EXPECT_EQ(a.speedupVsBaseline, b.speedupVsBaseline);
}

TEST(ExplorerRuntime, WarmRerunStatsReportPureHits) {
  // Regression test for the warm-rerun accounting bug: runtimeStats used to
  // report the shared EvalCache's cumulative counters, so a second Explorer
  // over a warm cache showed the first run's misses as its own (equal hits
  // and misses — a "50%" hit rate on a run that computed nothing). Stats are
  // now deltas against the cache state at Explorer construction.
  ExplorerFixture f;
  model::FlexCl flexcl(model::Device::virtex7());
  runtime::EvalCache evalCache;
  dse::ExplorerOptions opts;
  opts.jobs = 2;
  opts.evalCache = &evalCache;

  std::uint64_t coldMisses = 0;
  {
    dse::Explorer cold(flexcl, f.launch, opts);
    cold.explore(f.space());
    const runtime::Stats stats = cold.runtimeStats();
    coldMisses = stats.flexclEval.misses + stats.simEval.misses +
                 stats.sdaccelEval.misses;
    EXPECT_GT(coldMisses, 0u);
    EXPECT_GT(stats.analysis.misses, 0u);
  }

  dse::Explorer warm(flexcl, f.launch, opts);
  warm.explore(f.space());
  const runtime::Stats stats = warm.runtimeStats();
  EXPECT_EQ(stats.flexclEval.misses, 0u);
  EXPECT_EQ(stats.simEval.misses, 0u);
  EXPECT_EQ(stats.sdaccelEval.misses, 0u);
  EXPECT_GT(stats.flexclEval.hits, 0u);
  EXPECT_EQ(stats.flexclEval.hitRatePct(), 100.0);
  // The model's analysis cache is shared too (same FlexCl): the rerun's
  // only lookups come from the prewarm (EvalCache hits short-circuit the
  // estimates), and they are all hits.
  EXPECT_EQ(stats.analysis.misses, 0u);
  EXPECT_GT(stats.analysis.hits, 0u);
  // Entries are a level, not a flow: still the absolute cache size.
  EXPECT_EQ(stats.flexclEval.entries, evalCache.flexclCounters().entries);
}

TEST(ExplorerRuntime, StatsReportJobsAndCacheTraffic) {
  ExplorerFixture f;
  model::FlexCl flexcl(model::Device::virtex7());
  runtime::EvalCache evalCache;
  dse::ExplorerOptions opts;
  opts.jobs = 3;
  opts.evalCache = &evalCache;
  dse::Explorer explorer(flexcl, f.launch, opts);
  explorer.explore(f.space());

  const runtime::Stats stats = explorer.runtimeStats();
  EXPECT_EQ(stats.jobs, 3);
  EXPECT_GT(stats.profile.lookups(), 0u);
  EXPECT_GT(stats.simInput.lookups(), 0u);
  EXPECT_GT(stats.flexclEval.misses, 0u);
  EXPECT_FALSE(stats.str().empty());
  EXPECT_NE(stats.json().find("\"jobs\": 3"), std::string::npos);
}

}  // namespace
}  // namespace flexcl
