// End-to-end integration tests: the full pipeline (OpenCL source ->
// profile -> analysis -> model) against the cycle-level simulator, on real
// suite workloads. These pin the reproduction's headline property: the
// analytical estimate tracks the simulated ground truth.
#include <gtest/gtest.h>

#include "dse/explorer.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace flexcl {
namespace {

struct Loaded {
  std::shared_ptr<workloads::CompiledWorkload> compiled;
  model::LaunchInfo launch;
};

Loaded load(const char* suite, const char* benchmark, const char* kernel) {
  const workloads::Workload* w = workloads::findWorkload(suite, benchmark, kernel);
  EXPECT_NE(w, nullptr) << suite << "/" << benchmark << "/" << kernel;
  std::string error;
  auto compiled = workloads::compileWorkload(*w, &error);
  EXPECT_TRUE(compiled) << error;
  Loaded l;
  l.compiled = std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
  l.launch = l.compiled->launch();
  return l;
}

double errorPct(model::FlexCl& flexcl, const Loaded& l,
                const model::DesignPoint& dp) {
  const model::Estimate est = flexcl.estimate(l.launch, dp);
  EXPECT_TRUE(est.ok) << est.error;
  const interp::NdRange range = model::FlexCl::rangeFor(l.launch, dp);
  const sim::SimInput input = sim::prepareSimInput(
      *l.launch.fn, range, l.launch.args, *l.launch.buffers);
  EXPECT_TRUE(input.ok) << input.error;
  const sim::SimResult sim = sim::simulate(input, flexcl.device(), dp);
  EXPECT_TRUE(sim.ok) << sim.error;
  EXPECT_GT(sim.cycles, 0.0);
  return std::abs(est.cycles - sim.cycles) / sim.cycles * 100.0;
}

// Per-kernel error bound at a representative design point. The bound is a
// regression guard (loose enough for refactoring noise, tight enough to
// catch systematic breakage; the paper-scale evaluation is in bench/).
class ModelAccuracyTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*,
                                                 const char*>> {};

TEST_P(ModelAccuracyTest, TracksSimulatorWithinBound) {
  const auto [suite, benchmark, kernel] = GetParam();
  Loaded l = load(suite, benchmark, kernel);
  model::FlexCl flexcl(model::Device::virtex7());
  model::DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  dp.peParallelism = 2;
  dp.numComputeUnits = 2;
  EXPECT_LT(errorPct(flexcl, l, dp), 45.0);
}

INSTANTIATE_TEST_SUITE_P(
    SuiteKernels, ModelAccuracyTest,
    ::testing::Values(
        std::make_tuple("rodinia", "backprop", "layer"),
        std::make_tuple("rodinia", "hotspot", "hotspot"),
        std::make_tuple("rodinia", "kmeans", "center"),
        std::make_tuple("rodinia", "lavaMD", "lavaMD"),
        std::make_tuple("rodinia", "pathfinder", "dynproc"),
        std::make_tuple("rodinia", "srad", "srad"),
        std::make_tuple("rodinia", "btree", "findK"),
        std::make_tuple("polybench", "gemm", "gemm"),
        std::make_tuple("polybench", "atax", "atax"),
        std::make_tuple("polybench", "syr2k", "syr2k"),
        std::make_tuple("polybench", "mvt", "mvt")),
    [](const auto& info) {
      std::string name = std::string(std::get<1>(info.param)) + "_" +
                         std::get<2>(info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(Integration, ModelAndSimAgreeOnDesignRanking) {
  // The model does not need exact cycles to be useful for DSE — it needs the
  // *ranking* to be roughly right. Check rank correlation on a small space.
  Loaded l = load("rodinia", "kmeans", "center");
  model::FlexCl flexcl(model::Device::virtex7());
  dse::Explorer explorer(flexcl, l.launch);
  dse::SpaceOptions opts;
  opts.workGroupSizes = {32, 128};
  opts.peParallelism = {1, 4};
  opts.computeUnits = {1, 4};
  const auto space = dse::enumerateDesignSpace(l.launch.range,
                                               explorer.kernelHasBarriers(), opts);
  const dse::ExplorationResult result = explorer.explore(space);

  // Spearman-ish: count concordant pairs.
  int concordant = 0, total = 0;
  for (std::size_t i = 0; i < result.designs.size(); ++i) {
    for (std::size_t j = i + 1; j < result.designs.size(); ++j) {
      const auto& a = result.designs[i];
      const auto& b = result.designs[j];
      if (a.simCycles <= 0 || b.simCycles <= 0) continue;
      ++total;
      const bool simOrder = a.simCycles < b.simCycles;
      const bool modelOrder = a.flexclCycles < b.flexclCycles;
      if (simOrder == modelOrder) ++concordant;
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(concordant) / total, 0.75);
}

TEST(Integration, BarrierKernelsRouteThroughBarrierMode) {
  for (const char* name : {"hotspot", "pathfinder"}) {
    const workloads::Workload* w =
        name == std::string("hotspot")
            ? workloads::findWorkload("rodinia", "hotspot", "hotspot")
            : workloads::findWorkload("rodinia", "pathfinder", "dynproc");
    ASSERT_NE(w, nullptr);
    auto compiled = workloads::compileWorkload(*w);
    ASSERT_TRUE(compiled);
    model::FlexCl flexcl(model::Device::virtex7());
    const model::Estimate est =
        flexcl.estimate(compiled->launch(), model::DesignPoint{});
    ASSERT_TRUE(est.ok);
    EXPECT_EQ(est.mode, model::CommMode::Barrier) << name;
  }
}

TEST(Integration, AblationTogglesChangeTheEstimate) {
  Loaded l = load("polybench", "gemm", "gemm");
  const model::DesignPoint dp;

  model::FlexCl full(model::Device::virtex7());
  const double fullCycles = full.estimate(l.launch, dp).cycles;

  model::ModelOptions noCoalesce;
  noCoalesce.coalescing = false;
  model::FlexCl variant(model::Device::virtex7(), noCoalesce);
  const model::Estimate variantEst = variant.estimate(l.launch, dp);

  // Without coalescing every raw access is priced: strictly more memory
  // accesses and memory latency per work-item (the total may coincide when
  // the kernel is compute-II-bound, so assert on the memory side).
  EXPECT_GT(variantEst.memory.accessesPerWorkItem,
            full.estimate(l.launch, dp).memory.accessesPerWorkItem);
  EXPECT_GE(variantEst.cycles, fullCycles);
}

TEST(Integration, SimulatorSeparatesGoodAndBadDesigns) {
  // Ground-truth sanity: an obviously better design must simulate much
  // faster. Needs a kernel that can actually use the parallelism: loop-free
  // (no blocking inner-loop engine) and light on DSPs (replication fits).
  Loaded l = load("rodinia", "dwt2d", "compute");
  model::FlexCl flexcl(model::Device::virtex7());
  dse::Explorer explorer(flexcl, l.launch);

  model::DesignPoint weak;
  weak.workGroupSize = {32, 1, 1};
  weak.workItemPipeline = false;
  weak.peParallelism = 1;
  weak.numComputeUnits = 1;
  model::DesignPoint strong;
  strong.workGroupSize = {128, 1, 1};
  strong.workItemPipeline = true;
  strong.peParallelism = 4;
  strong.numComputeUnits = 4;

  const double weakCycles = explorer.simulateDesign(weak);
  const double strongCycles = explorer.simulateDesign(strong);
  ASSERT_GT(weakCycles, 0.0);
  ASSERT_GT(strongCycles, 0.0);
  EXPECT_LT(strongCycles * 4, weakCycles);
}

TEST(Integration, ProfileCacheDoesNotAliasKernelsWithSameName) {
  // Two different kernels named "memset" (cfd and streamcluster) must not
  // reuse each other's profiles even if the allocator reuses addresses.
  model::FlexCl flexcl(model::Device::virtex7());
  double first = 0;
  {
    Loaded a = load("rodinia", "cfd", "memset");
    first = flexcl.estimate(a.launch, model::DesignPoint{}).cycles;
  }
  Loaded b = load("rodinia", "streamcluster", "memset");
  const model::Estimate est = flexcl.estimate(b.launch, model::DesignPoint{});
  ASSERT_TRUE(est.ok);
  // streamcluster/memset has an extra scalar arg; estimates are independent
  // computations and must both be positive and self-consistent.
  EXPECT_GT(est.cycles, 0.0);
  EXPECT_GT(first, 0.0);
}

}  // namespace
}  // namespace flexcl
