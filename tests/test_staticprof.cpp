// Static profile synthesis tests: verdict unit cases on targeted kernels and
// the suite-wide cross-validation sweep — every Exact kernel's synthesized
// profile must be event-for-event identical to the profiling interpreter's,
// and model estimates must be bit-identical with the static tier on and off.
#include <gtest/gtest.h>

#include <iostream>
#include <map>

#include "analysis/staticprof/staticprof.h"
#include "analysis/symbolic.h"
#include "interp/profiler.h"
#include "ir/lower.h"
#include "model/flexcl.h"
#include "serve/store/codec.h"
#include "workloads/workload.h"

namespace flexcl::analysis::staticprof {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto compiled = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(compiled) << diags.str();
  return compiled;
}

const ir::Function* fnOf(const ir::CompiledProgram& p, const std::string& name) {
  const ir::Function* fn = p.module->findFunction(name);
  EXPECT_NE(fn, nullptr);
  return fn;
}

/// The local size every suite test uses (mirrors the interpreter-tier tests).
interp::NdRange workloadRange(const workloads::Workload& w) {
  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 4, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }
  return range;
}

void expectSameEvent(const interp::MemoryAccessEvent& a,
                     const interp::MemoryAccessEvent& b, const std::string& who,
                     std::size_t i) {
  EXPECT_EQ(a.workItem, b.workItem) << who << " event " << i;
  EXPECT_EQ(a.group, b.group) << who << " event " << i;
  EXPECT_EQ(a.space, b.space) << who << " event " << i;
  EXPECT_EQ(a.buffer, b.buffer) << who << " event " << i;
  EXPECT_EQ(a.offset, b.offset) << who << " event " << i;
  EXPECT_EQ(a.size, b.size) << who << " event " << i;
  EXPECT_EQ(a.isWrite, b.isWrite) << who << " event " << i;
  EXPECT_EQ(a.instId, b.instId) << who << " event " << i;
}

void expectSameTrace(const std::vector<interp::MemoryAccessEvent>& synth,
                     const std::vector<interp::MemoryAccessEvent>& interp,
                     const std::string& who) {
  ASSERT_EQ(synth.size(), interp.size()) << who;
  for (std::size_t i = 0; i < synth.size(); ++i) {
    expectSameEvent(synth[i], interp[i], who, i);
    if (testing::Test::HasNonfatalFailure()) break;  // one event is enough
  }
}

/// Full profile equivalence: the property the model relies on to consume an
/// Exact synthesized profile in place of an interpreted one.
void expectSameProfile(const interp::KernelProfile& synth,
                       const interp::KernelProfile& interp,
                       const std::string& who) {
  ASSERT_TRUE(interp.ok) << who << ": " << interp.error;
  ASSERT_TRUE(synth.ok) << who;
  ASSERT_EQ(synth.loopTripCounts.size(), interp.loopTripCounts.size()) << who;
  for (std::size_t i = 0; i < synth.loopTripCounts.size(); ++i) {
    EXPECT_DOUBLE_EQ(synth.loopTripCounts[i], interp.loopTripCounts[i])
        << who << " loop " << i;
  }
  expectSameTrace(synth.globalTrace, interp.globalTrace, who + " global");
  expectSameTrace(synth.localTrace, interp.localTrace, who + " local");
  EXPECT_EQ(synth.profiledGroups, interp.profiledGroups) << who;
  EXPECT_EQ(synth.profiledWorkItems, interp.profiledWorkItems) << who;
  EXPECT_EQ(synth.oobAccesses, interp.oobAccesses) << who;
  EXPECT_EQ(synth.provenance, interp::KernelProfile::Provenance::Synthesized)
      << who;
  EXPECT_EQ(interp.provenance, interp::KernelProfile::Provenance::Interpreted)
      << who;
}

// ---------------------------------------------------------------------------
// Verdict unit cases
// ---------------------------------------------------------------------------

TEST(StaticProf, AffineKernelIsExactAndEventIdentical) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  out[i] = a[i] * 2.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{64, 1, 1}, {16, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(256));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  ASSERT_TRUE(synth.verdict.exact()) << synth.verdict.reason;
  const auto interp = interp::profileKernel(*fn, range, args, buffers);
  expectSameProfile(synth.profile, interp, "k");
}

TEST(StaticProf, BarrierInterleavingMatchesRoundRobin) {
  // Two barrier segments: the group trace must be segment-major with
  // work-items in linear local order inside each segment, exactly like the
  // interpreter's round-robin execution produces.
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  __local float tile[16];\n"
      "  int l = get_local_id(0);\n"
      "  int i = get_global_id(0);\n"
      "  tile[l] = a[i];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[i] = tile[15 - l];\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{32, 1, 1}, {16, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(128));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  ASSERT_TRUE(synth.verdict.exact()) << synth.verdict.reason;
  const auto interp = interp::profileKernel(*fn, range, args, buffers);
  expectSameProfile(synth.profile, interp, "barrier kernel");
}

TEST(StaticProf, ScalarBoundLoopIsExact) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out, int n) {\n"
      "  int i = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int j = 0; j < n; j++) s += a[j];\n"
      "  out[i] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {8, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(64));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1),
                                         interp::KernelArg::intScalar(7)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  ASSERT_TRUE(synth.verdict.exact()) << synth.verdict.reason;
  const auto interp = interp::profileKernel(*fn, range, args, buffers);
  expectSameProfile(synth.profile, interp, "scalar-bound loop");
}

TEST(StaticProf, DataDependentBranchIsApproximate) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  if (a[i] > 0.5f) out[i] = 1.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {8, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(64));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  EXPECT_EQ(synth.verdict.kind, VerdictKind::Approximate);
  EXPECT_EQ(synth.verdict.reason, "data-dependent branch");
}

TEST(StaticProf, DataDependentTripCountIsApproximate) {
  auto p = compile(
      "__kernel void k(__global const int* n, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int j = 0; j < n[0]; j++) s += 1.0f;\n"
      "  out[i] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {8, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(64));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  EXPECT_EQ(synth.verdict.kind, VerdictKind::Approximate);
}

TEST(StaticProf, LoopBreakIsApproximate) {
  auto p = compile(
      "__kernel void k(__global const float* a, __global float* out) {\n"
      "  int i = get_global_id(0);\n"
      "  float s = 0.0f;\n"
      "  for (int j = 0; j < 8; j++) {\n"
      "    if (a[j] < 0.0f) break;\n"
      "    s += a[j];\n"
      "  }\n"
      "  out[i] = s;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {8, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(2,
                                                 std::vector<std::uint8_t>(64));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0),
                                         interp::KernelArg::buffer(1)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  EXPECT_EQ(synth.verdict.kind, VerdictKind::Approximate);
}

TEST(StaticProf, BadGeometryIsUnsupported) {
  auto p = compile(
      "__kernel void k(__global float* out) {\n"
      "  out[get_global_id(0)] = 1.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{10, 1, 1}, {4, 1, 1}};  // 4 does not divide 10
  std::vector<std::vector<std::uint8_t>> buffers(1,
                                                 std::vector<std::uint8_t>(64));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  EXPECT_EQ(synth.verdict.kind, VerdictKind::Unsupported);
}

TEST(StaticProf, OutOfBoundsAccountingMatchesInterpreter) {
  // The pool is too small for the upper work-items: the interpreter counts
  // those accesses as OOB but still records the events; synthesis must
  // reproduce both the count and the trace.
  auto p = compile(
      "__kernel void k(__global float* out) {\n"
      "  out[get_global_id(0)] = 1.0f;\n"
      "}\n");
  const ir::Function* fn = fnOf(*p, "k");
  const interp::NdRange range{{16, 1, 1}, {8, 1, 1}};
  std::vector<std::vector<std::uint8_t>> buffers(1,
                                                 std::vector<std::uint8_t>(16));
  std::vector<interp::KernelArg> args = {interp::KernelArg::buffer(0)};
  const auto summary = analysis::summarizeKernel(*fn);
  const auto synth = synthesizeProfile(summary, range, args, buffers);
  ASSERT_TRUE(synth.verdict.exact()) << synth.verdict.reason;
  const auto interp = interp::profileKernel(*fn, range, args, buffers);
  EXPECT_GT(synth.profile.oobAccesses, 0u);
  expectSameProfile(synth.profile, interp, "oob kernel");
}

// ---------------------------------------------------------------------------
// Suite-wide cross-validation (the acceptance sweep)
// ---------------------------------------------------------------------------

// Every bundled workload, synthesized and interpreted under the same launch:
// Exact kernels must agree event-for-event, and at least 40 of the 60 must
// reach Exact (the paper's kernels are overwhelmingly launch-determined).
TEST(StaticProfSweep, ExactKernelsMatchInterpreterEventForEvent) {
  std::size_t total = 0;
  std::size_t exact = 0;
  std::map<std::string, std::size_t> fallbackReasons;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled) << w.fullName();
      ++total;
      const interp::NdRange range = workloadRange(w);
      const auto summary = analysis::summarizeKernel(*compiled->fn);
      const auto synth = synthesizeProfile(summary, range, compiled->args,
                                           compiled->buffers);
      if (!synth.verdict.exact()) {
        ++fallbackReasons[std::string(synth.verdict.name()) + ": " +
                          synth.verdict.reason];
        continue;
      }
      ++exact;
      const auto interp = interp::profileKernel(*compiled->fn, range,
                                                compiled->args,
                                                compiled->buffers);
      expectSameProfile(synth.profile, interp, w.fullName());
      if (testing::Test::HasNonfatalFailure()) {
        FAIL() << w.fullName() << ": synthesized profile diverges";
      }
    }
  }
  std::cout << "staticprof sweep: " << exact << "/" << total << " exact\n";
  for (const auto& [reason, count] : fallbackReasons) {
    std::cout << "  fallback x" << count << ": " << reason << "\n";
  }
  EXPECT_EQ(total, 60u);
  EXPECT_GE(exact, 40u);
}

// The model must be bit-identical with the static tier on and off: Exact
// profiles are consumed, everything else falls back, so every estimate field
// (cycles included, compared exactly, not approximately) must agree.
TEST(StaticProfSweep, EstimatesBitIdenticalWithTierOnAndOff) {
  model::ModelOptions on;
  on.staticProfiles = true;
  model::ModelOptions off;
  off.staticProfiles = false;
  model::FlexCl withTier(model::Device::virtex7(), on);
  model::FlexCl withoutTier(model::Device::virtex7(), off);
  const model::DesignPoint design;  // default: wg 64x1x1
  std::size_t compared = 0;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      auto compiled = workloads::compileWorkload(w);
      ASSERT_TRUE(compiled) << w.fullName();
      const model::LaunchInfo launch = compiled->launch();
      const model::Estimate a = withTier.estimate(launch, design);
      const model::Estimate b = withoutTier.estimate(launch, design);
      ASSERT_EQ(a.ok, b.ok) << w.fullName() << ": " << a.error << " / "
                            << b.error;
      if (!a.ok) continue;
      EXPECT_EQ(a.cycles, b.cycles) << w.fullName();
      EXPECT_EQ(a.milliseconds, b.milliseconds) << w.fullName();
      EXPECT_EQ(a.breakdown.compute, b.breakdown.compute) << w.fullName();
      EXPECT_EQ(a.breakdown.memory, b.breakdown.memory) << w.fullName();
      EXPECT_EQ(a.breakdown.fillDrain, b.breakdown.fillDrain) << w.fullName();
      EXPECT_EQ(a.breakdown.dispatch, b.breakdown.dispatch) << w.fullName();
      ++compared;
    }
  }
  EXPECT_GE(compared, 50u);
}

// The verdict surface: staticVerdict answers for any launch without running
// the interpreter, and the disabled tier reports itself as such.
TEST(StaticProf, ModelVerdictSurface) {
  const workloads::Workload* w =
      workloads::findWorkload("rodinia", "nn", "nearestNeighbor");
  if (w == nullptr) {
    // Fall back to the first workload if that name ever changes.
    w = &workloads::rodiniaSuite().front();
  }
  auto compiled = workloads::compileWorkload(*w);
  ASSERT_TRUE(compiled);
  const model::LaunchInfo launch = compiled->launch();
  const model::DesignPoint design;

  model::FlexCl enabled(model::Device::virtex7());
  const auto verdict = enabled.staticVerdict(launch, design);
  EXPECT_TRUE(verdict.kind == VerdictKind::Exact ||
              !verdict.reason.empty());

  model::ModelOptions opts;
  opts.staticProfiles = false;
  model::FlexCl disabled(model::Device::virtex7(), opts);
  const auto off = disabled.staticVerdict(launch, design);
  EXPECT_EQ(off.kind, VerdictKind::Unsupported);
  EXPECT_EQ(off.reason, "static tier disabled");
}

// Provenance must round-trip through the store codec (kProfileCodecVersion 2).
TEST(StaticProf, ProvenancePersistsThroughProfileCodec) {
  interp::KernelProfile p;
  p.ok = true;
  p.provenance = interp::KernelProfile::Provenance::Synthesized;
  p.loopTripCounts = {2.5};
  serve::ByteWriter w;
  serve::encodeProfile(w, p);
  const std::vector<std::uint8_t> bytes = w.take();
  serve::ByteReader r(bytes);
  interp::KernelProfile out;
  ASSERT_TRUE(serve::decodeProfile(r, &out));
  EXPECT_EQ(out.provenance, interp::KernelProfile::Provenance::Synthesized);
  ASSERT_EQ(out.loopTripCounts.size(), 1u);
  EXPECT_DOUBLE_EQ(out.loopTripCounts[0], 2.5);
}

}  // namespace
}  // namespace flexcl::analysis::staticprof
