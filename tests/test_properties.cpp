// Property sweeps: model/simulator/scheduler invariants checked across real
// suite kernels and a grid of design points (not hand-picked examples).
#include <gtest/gtest.h>

#include "dse/design_space.h"
#include "sched/list_scheduler.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace flexcl {
namespace {

const std::vector<std::pair<const char*, const char*>>& sampleKernels() {
  static const std::vector<std::pair<const char*, const char*>> sample = {
      {"backprop", "layer"},   {"bfs", "bfs_1"},       {"cfd", "compute"},
      {"hotspot", "hotspot"},  {"kmeans", "center"},   {"nn", "nn"},
      {"srad", "reduce"},      {"hybridsort", "prefix"},
  };
  return sample;
}

class KernelPropertyTest
    : public ::testing::TestWithParam<std::pair<const char*, const char*>> {
 protected:
  void SetUp() override {
    const auto [benchmark, kernel] = GetParam();
    const workloads::Workload* w =
        workloads::findWorkload("rodinia", benchmark, kernel);
    ASSERT_NE(w, nullptr);
    std::string error;
    auto compiled = workloads::compileWorkload(*w, &error);
    ASSERT_TRUE(compiled) << error;
    compiled_ =
        std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
  }

  std::shared_ptr<workloads::CompiledWorkload> compiled_;
  model::FlexCl flexcl_{model::Device::virtex7()};
};

TEST_P(KernelPropertyTest, ModelInvariantsAcrossDesignGrid) {
  const model::LaunchInfo launch = compiled_->launch();
  for (std::uint32_t wg : {32u, 128u}) {
    for (int pe : {1, 8}) {
      for (int cu : {1, 4}) {
        model::DesignPoint dp;
        dp.workGroupSize = {wg, 1, 1};
        dp.peParallelism = pe;
        dp.numComputeUnits = cu;
        const model::Estimate est = flexcl_.estimate(launch, dp);
        ASSERT_TRUE(est.ok) << dp.str() << ": " << est.error;
        EXPECT_GT(est.cycles, 0.0) << dp.str();
        EXPECT_GE(est.pe.iiComp, est.pe.mii) << dp.str();
        EXPECT_EQ(est.pe.mii, std::max(est.pe.recMii, est.pe.resMii)) << dp.str();
        EXPECT_GE(est.cu.effectivePes, 1) << dp.str();
        EXPECT_LE(est.cu.effectivePes, pe) << dp.str();
        EXPECT_GE(est.kernelCompute.effectiveCus, 1) << dp.str();
        EXPECT_LE(est.kernelCompute.effectiveCus, cu) << dp.str();
        if (est.mode == model::CommMode::Pipeline) {
          EXPECT_GE(est.iiWi, est.pe.iiComp) << dp.str();
        }
        if (est.barrierCount > 0) {
          EXPECT_EQ(est.mode, model::CommMode::Barrier) << dp.str();
        }
        // The estimate is at least the memory service time of all work-items
        // divided by the maximal parallelism — a crude physical lower bound.
        const double floor =
            est.memory.serviceDemandPerWi *
            static_cast<double>(est.totalWorkItems) / (8.0 * 16.0);
        EXPECT_GE(est.cycles, floor) << dp.str();
      }
    }
  }
}

TEST_P(KernelPropertyTest, SimulatorInvariants) {
  const model::LaunchInfo launch = compiled_->launch();
  model::DesignPoint dp;
  dp.workGroupSize = {64, 1, 1};
  dp.peParallelism = 2;
  dp.numComputeUnits = 2;
  const interp::NdRange range = model::FlexCl::rangeFor(launch, dp);
  const sim::SimInput input =
      sim::prepareSimInput(*launch.fn, range, launch.args, *launch.buffers);
  ASSERT_TRUE(input.ok) << input.error;

  // The DRAM sees exactly the coalesced accesses of every work-item.
  const std::uint64_t expectedAccesses = input.accesses.size();
  ASSERT_EQ(input.workItemCount() + 1, input.accessOffsets.size());
  EXPECT_EQ(input.accessOffsets.back(), expectedAccesses);

  const sim::SimResult a = sim::simulate(input, flexcl_.device(), dp);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.dramAccesses, expectedAccesses);
  EXPECT_LE(a.dramRowHits, a.dramAccesses);
  EXPECT_EQ(a.workGroups, range.groupCount());
  EXPECT_GT(a.cycles, 0.0);

  // Determinism.
  const sim::SimResult b = sim::simulate(input, flexcl_.device(), dp);
  EXPECT_DOUBLE_EQ(a.cycles, b.cycles);

  // The simulated run can never beat the best-case issue rate: every DRAM
  // access needs at least one data-bus cycle.
  EXPECT_GE(a.cycles, static_cast<double>(expectedAccesses) *
                          flexcl_.device().dram.transferCycles /
                          flexcl_.device().dram.banks);
}

TEST_P(KernelPropertyTest, ListScheduleBoundsHoldOnEveryBlock) {
  const model::OpLatencyDb latencies = model::OpLatencyDb::virtex7();
  const sched::ResourceBudget budget;
  for (const auto& bb : compiled_->fn->blocks()) {
    const cdfg::BlockDfg dfg = cdfg::BlockDfg::build(*bb, latencies);
    const sched::ListScheduleResult result = sched::listSchedule(dfg, budget);
    int serial = 0;
    for (const auto& n : dfg.nodes()) serial += std::max(1, n.latency);
    EXPECT_GE(result.latency, dfg.criticalPathLength()) << bb->name();
    EXPECT_LE(result.latency, serial) << bb->name();
    // Dependences respected.
    const auto& nodes = dfg.nodes();
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      for (int p : nodes[i].preds) {
        const auto pi = static_cast<std::size_t>(p);
        EXPECT_GE(result.startCycle[i], result.startCycle[pi] + nodes[pi].latency)
            << bb->name() << " node " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RodiniaSample, KernelPropertyTest,
                         ::testing::ValuesIn(sampleKernels()),
                         [](const auto& info) {
                           std::string n = std::string(info.param.first) + "_" +
                                           info.param.second;
                           for (char& c : n) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(ModelProperties, ExpectedIiMaxIsMonotoneAndBounded) {
  model::MemoryModel mm;
  mm.lMemWi = 30;
  mm.accessesPerWorkItem = 3;
  mm.perWiChainSpan = {10, 20, 60};
  // Lower bound: at least `other`; upper bound: other + mean span.
  double last = 0;
  for (double other : {0.0, 5.0, 15.0, 30.0, 100.0}) {
    const double v = mm.expectedIiMax(other);
    EXPECT_GE(v, other);
    EXPECT_LE(v, other + 30.0 + 1e-9);
    EXPECT_GE(v, last);  // monotone in `other`
    last = v;
  }
  // Exact expectation for other = 15: mean(max(15,10), max(15,20), max(15,60)).
  EXPECT_NEAR(mm.expectedIiMax(15.0), (15 + 20 + 60) / 3.0, 1e-9);
}

TEST(ModelProperties, DesignSpaceCoversEveryAxisValue) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  const auto space = dse::enumerateDesignSpace(range, false);
  std::set<int> pes, cus;
  std::set<std::uint32_t> wgs;
  std::set<bool> pipes;
  for (const auto& dp : space) {
    pes.insert(dp.peParallelism);
    cus.insert(dp.numComputeUnits);
    wgs.insert(dp.workGroupSize[0]);
    pipes.insert(dp.workItemPipeline);
  }
  EXPECT_EQ(pes.size(), 4u);
  EXPECT_EQ(cus.size(), 3u);
  EXPECT_EQ(wgs.size(), 4u);
  EXPECT_EQ(pipes.size(), 2u);
}

}  // namespace
}  // namespace flexcl
