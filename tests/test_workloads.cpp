#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <iostream>

#include "analysis/analyze.h"
#include "interp/interpreter.h"
#include "interp/profiler.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "workloads/workload.h"

namespace flexcl::workloads {
namespace {

TEST(Workloads, RodiniaHasAllTable2Kernels) {
  EXPECT_EQ(rodiniaSuite().size(), 45u);
}

TEST(Workloads, PolybenchHasFifteenKernels) {
  EXPECT_EQ(polybenchSuite().size(), 15u);
}

TEST(Workloads, NamesAreUniqueWithinSuites) {
  for (const auto* suite : {&rodiniaSuite(), &polybenchSuite()}) {
    std::set<std::string> names;
    for (const Workload& w : *suite) names.insert(w.fullName());
    EXPECT_EQ(names.size(), suite->size());
  }
}

TEST(Workloads, FindWorkload) {
  EXPECT_NE(findWorkload("rodinia", "hotspot", "hotspot"), nullptr);
  EXPECT_NE(findWorkload("polybench", "gemm", "gemm"), nullptr);
  EXPECT_EQ(findWorkload("rodinia", "nope", "nope"), nullptr);
}

// Every workload must compile, provide matching args, and execute its full
// NDRange on the interpreter without fatal errors.
class WorkloadCompileTest
    : public ::testing::TestWithParam<std::pair<const char*, int>> {};

TEST_P(WorkloadCompileTest, CompilesAndRuns) {
  const auto [suiteName, index] = GetParam();
  const auto& suite =
      std::string(suiteName) == "rodinia" ? rodiniaSuite() : polybenchSuite();
  ASSERT_LT(static_cast<std::size_t>(index), suite.size());
  const Workload& w = suite[static_cast<std::size_t>(index)];

  std::string error;
  auto compiled = compileWorkload(w, &error);
  ASSERT_TRUE(compiled) << error;
  EXPECT_TRUE(compiled->fn->isKernel);

  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(64, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 8, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }

  std::vector<std::vector<std::uint8_t>> buffers = compiled->buffers;
  interp::InterpResult result =
      interp::runKernel(*compiled->fn, range, compiled->args, buffers, {});
  EXPECT_TRUE(result.ok) << w.fullName() << ": " << result.error;
  EXPECT_GT(result.executedInstructions, 0u);
}

std::vector<std::pair<const char*, int>> allWorkloadIds() {
  std::vector<std::pair<const char*, int>> ids;
  for (std::size_t i = 0; i < rodiniaSuite().size(); ++i) {
    ids.emplace_back("rodinia", static_cast<int>(i));
  }
  for (std::size_t i = 0; i < polybenchSuite().size(); ++i) {
    ids.emplace_back("polybench", static_cast<int>(i));
  }
  return ids;
}

std::string workloadTestName(
    const ::testing::TestParamInfo<std::pair<const char*, int>>& info) {
  const auto& suite = std::string(info.param.first) == "rodinia"
                          ? rodiniaSuite()
                          : polybenchSuite();
  std::string name = suite[static_cast<std::size_t>(info.param.second)].fullName();
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return std::string(info.param.first) + "_" + name;
}

INSTANTIATE_TEST_SUITE_P(AllSuites, WorkloadCompileTest,
                         ::testing::ValuesIn(allWorkloadIds()), workloadTestName);


TEST(Workloads, AllKernelsVerifyAndPrint) {
  // Every suite kernel must pass the IR verifier and print without issue
  // (the printer walks every instruction and operand).
  for (const auto* suite : {&rodiniaSuite(), &polybenchSuite()}) {
    for (const Workload& w : *suite) {
      std::string error;
      auto compiled = compileWorkload(w, &error);
      ASSERT_TRUE(compiled) << error;
      ir::Function* fn = const_cast<ir::Function*>(compiled->fn);
      const auto problems = ir::verifyFunction(*fn);
      EXPECT_TRUE(problems.empty())
          << w.fullName() << ": " << (problems.empty() ? "" : problems[0]);
      const std::string text = ir::printFunction(*fn);
      EXPECT_NE(text.find("kernel @" + w.kernel), std::string::npos)
          << w.fullName();
      EXPECT_GT(text.size(), 100u) << w.fullName();
    }
  }
}

TEST(Workloads, BufferSizesCoverKernelAccesses) {
  // Profiling every workload with lenient bounds must produce (almost) no
  // out-of-bounds accesses: the setup functions size buffers to the kernels.
  for (const auto* suite : {&rodiniaSuite(), &polybenchSuite()}) {
    for (const Workload& w : *suite) {
      auto compiled = compileWorkload(w);
      ASSERT_TRUE(compiled);
      interp::NdRange range = w.range;
      range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
      while (range.global[0] % range.local[0] != 0) --range.local[0];
      if (range.global[1] > 1) {
        range.local = {8, 4, 1};
        while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
        while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
      }
      auto profile = interp::profileKernel(*compiled->fn, range, compiled->args,
                                           compiled->buffers);
      ASSERT_TRUE(profile.ok) << w.fullName() << ": " << profile.error;
      EXPECT_EQ(profile.oobAccesses, 0u) << w.fullName();
    }
  }
}

// Every bundled workload must lint clean of error-severity findings, and the
// static Table 1 classifier must agree with the profile-based classification
// on at least 90% of the profiled global-access events in aggregate. Warnings
// are allowed; divergent kernels are printed so the lint output stays
// visible as a snapshot.
TEST(Workloads, LintCleanAndStaticPatternsAgreeWithProfile) {
  std::uint64_t profiledEvents = 0;
  std::uint64_t matchedEvents = 0;
  std::size_t crossChecked = 0;
  std::size_t kernels = 0;
  for (const auto* suite : {&rodiniaSuite(), &polybenchSuite()}) {
    for (const Workload& w : *suite) {
      auto compiled = compileWorkload(w);
      ASSERT_TRUE(compiled);
      ++kernels;
      interp::NdRange range = w.range;
      range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
      while (range.global[0] % range.local[0] != 0) --range.local[0];
      if (range.global[1] > 1) {
        range.local = {8, 4, 1};
        while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
        while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
      }
      analysis::LintOptions opts;
      opts.range = &range;
      opts.args = &compiled->args;
      opts.buffers = &compiled->buffers;
      const analysis::LintReport report =
          analysis::runLintPasses(*compiled->fn, opts);
      for (const auto& f : report.findings) {
        EXPECT_NE(f.severity, DiagSeverity::Error)
            << w.fullName() << ": [" << f.pass << "/" << f.rule << "] "
            << f.message;
      }
      if (report.crossChecked) {
        ++crossChecked;
        const auto& cc = report.patterns;
        profiledEvents += cc.profiledStreamEvents;
        matchedEvents += static_cast<std::uint64_t>(std::llround(
            cc.agreement * static_cast<double>(cc.profiledStreamEvents)));
        if (!cc.divergences.empty()) {
          std::cout << "  " << w.fullName() << ": " << cc.divergences.size()
                    << " divergence(s), agreement " << 100.0 * cc.agreement
                    << "%\n";
        }
      }
    }
  }
  ASSERT_GT(crossChecked, 0u);
  ASSERT_GT(profiledEvents, 0u);
  const double aggregate =
      static_cast<double>(matchedEvents) / static_cast<double>(profiledEvents);
  std::cout << "static/profiled pattern agreement: " << 100.0 * aggregate
            << "% over " << profiledEvents << " profiled events from "
            << crossChecked << "/" << kernels << " kernels\n";
  EXPECT_GE(aggregate, 0.90);
}

// Functional spot checks against reference computations.

std::vector<float> asFloats(const std::vector<std::uint8_t>& b) {
  std::vector<float> v(b.size() / 4);
  std::memcpy(v.data(), b.data(), b.size());
  return v;
}

TEST(WorkloadsFunctional, GemmMatchesReference) {
  const Workload* w = findWorkload("polybench", "gemm", "gemm");
  ASSERT_NE(w, nullptr);
  auto compiled = compileWorkload(*w);
  ASSERT_TRUE(compiled);

  const auto a = asFloats(compiled->buffers[0]);
  const auto b = asFloats(compiled->buffers[1]);
  const auto cIn = asFloats(compiled->buffers[2]);

  std::vector<std::vector<std::uint8_t>> buffers = compiled->buffers;
  interp::NdRange range = w->range;
  range.local = {8, 8, 1};
  auto result = interp::runKernel(*compiled->fn, range, compiled->args, buffers,
                                  {});
  ASSERT_TRUE(result.ok) << result.error;

  const int n = 32;
  const auto out = asFloats(buffers[2]);
  for (int i = 0; i < n; i += 7) {
    for (int j = 0; j < n; j += 5) {
      float acc = 0;
      for (int k = 0; k < n; ++k) acc += a[i * n + k] * b[k * n + j];
      const float expect = 1.5f * acc + 0.5f * cIn[i * n + j];
      EXPECT_NEAR(out[i * n + j], expect, 1e-3) << i << "," << j;
    }
  }
}

TEST(WorkloadsFunctional, KmeansCenterAssignsNearestCluster) {
  const Workload* w = findWorkload("rodinia", "kmeans", "center");
  ASSERT_NE(w, nullptr);
  auto compiled = compileWorkload(*w);
  ASSERT_TRUE(compiled);

  const auto features = asFloats(compiled->buffers[0]);
  const auto clusters = asFloats(compiled->buffers[1]);

  std::vector<std::vector<std::uint8_t>> buffers = compiled->buffers;
  interp::NdRange range = w->range;
  range.local = {64, 1, 1};
  auto result = interp::runKernel(*compiled->fn, range, compiled->args, buffers,
                                  {});
  ASSERT_TRUE(result.ok) << result.error;

  std::vector<std::int32_t> membership(1024);
  std::memcpy(membership.data(), buffers[2].data(), 1024 * 4);
  for (int p = 0; p < 1024; p += 97) {
    int best = 0;
    float bestDist = std::numeric_limits<float>::max();
    for (int c = 0; c < 5; ++c) {
      float dist = 0;
      for (int f = 0; f < 8; ++f) {
        const float d = features[p * 8 + f] - clusters[c * 8 + f];
        dist += d * d;
      }
      if (dist < bestDist) {
        bestDist = dist;
        best = c;
      }
    }
    EXPECT_EQ(membership[p], best) << p;
  }
}

TEST(WorkloadsFunctional, BtreeFindKLocatesKeys) {
  const Workload* w = findWorkload("rodinia", "btree", "findK");
  ASSERT_NE(w, nullptr);
  auto compiled = compileWorkload(*w);
  ASSERT_TRUE(compiled);

  std::vector<std::int32_t> queries(1024);
  std::memcpy(queries.data(), compiled->buffers[1].data(), 1024 * 4);

  std::vector<std::vector<std::uint8_t>> buffers = compiled->buffers;
  interp::NdRange range = w->range;
  range.local = {64, 1, 1};
  auto result = interp::runKernel(*compiled->fn, range, compiled->args, buffers,
                                  {});
  ASSERT_TRUE(result.ok) << result.error;

  std::vector<std::int32_t> results(1024);
  std::memcpy(results.data(), buffers[2].data(), 1024 * 4);
  for (int q = 0; q < 1024; q += 53) {
    // keys[i] = 2*i: even queries are found at q/2, odd ones are absent.
    if (queries[q] % 2 == 0) {
      EXPECT_EQ(results[q], queries[q] / 2) << q;
    } else {
      EXPECT_EQ(results[q], -1) << q;
    }
  }
}

TEST(WorkloadsFunctional, PathfinderTakesMinNeighbour) {
  const Workload* w = findWorkload("rodinia", "pathfinder", "dynproc");
  ASSERT_NE(w, nullptr);
  auto compiled = compileWorkload(*w);
  ASSERT_TRUE(compiled);

  std::vector<std::int32_t> wall(2048), src(2048);
  std::memcpy(wall.data(), compiled->buffers[0].data(), 2048 * 4);
  std::memcpy(src.data(), compiled->buffers[1].data(), 2048 * 4);

  std::vector<std::vector<std::uint8_t>> buffers = compiled->buffers;
  interp::NdRange range = w->range;
  range.local = {256, 1, 1};
  auto result = interp::runKernel(*compiled->fn, range, compiled->args, buffers,
                                  {});
  ASSERT_TRUE(result.ok) << result.error;

  std::vector<std::int32_t> dst(2048);
  std::memcpy(dst.data(), buffers[2].data(), 2048 * 4);
  for (int g = 300; g < 400; ++g) {
    const int l = g % 256;
    int best = src[g];
    if (l > 0) best = std::min(best, src[g - 1]);
    if (l < 255) best = std::min(best, src[g + 1]);
    EXPECT_EQ(dst[g], best + wall[g]) << g;
  }
}

}  // namespace
}  // namespace flexcl::workloads
