#include <gtest/gtest.h>

#include "cdfg/dfg.h"
#include "ir/lower.h"
#include "sched/list_scheduler.h"
#include "sched/sms.h"
#include "support/rng.h"

namespace flexcl::sched {
namespace {

std::unique_ptr<ir::CompiledProgram> compile(const std::string& src) {
  DiagnosticEngine diags;
  auto c = ir::compileOpenCl(src, diags);
  EXPECT_TRUE(c) << diags.str();
  return c;
}

cdfg::BlockDfg largestBlockDfg(const ir::Function& fn) {
  const ir::BasicBlock* best = nullptr;
  for (const auto& bb : fn.blocks()) {
    if (!best || bb->instructions().size() > best->instructions().size()) {
      best = bb.get();
    }
  }
  return cdfg::BlockDfg::build(*best, model::OpLatencyDb::virtex7());
}

// ---------------------------------------------------------------------------
// List scheduler
// ---------------------------------------------------------------------------

TEST(ListScheduler, EmptyBlockHasZeroLatency) {
  cdfg::BlockDfg empty;
  EXPECT_EQ(listSchedule(empty, ResourceBudget{}).latency, 0);
}

TEST(ListScheduler, RespectsDependencies) {
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  o[0] = (o[1] * 2.0f + 1.0f) * (o[2] + 3.0f);\n"
      "}\n");
  cdfg::BlockDfg dfg = largestBlockDfg(*c->module->findFunction("k"));
  ListScheduleResult result = listSchedule(dfg, ResourceBudget{});
  // Every op starts no earlier than each predecessor's completion.
  const auto& nodes = dfg.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int p : nodes[i].preds) {
      const auto pi = static_cast<std::size_t>(p);
      EXPECT_GE(result.startCycle[i], result.startCycle[pi] + nodes[pi].latency);
    }
  }
  EXPECT_GE(result.latency, dfg.criticalPathLength());
}

TEST(ListScheduler, ResourceLimitSerializesPortUse) {
  // Four local reads with one read port must spread over >= 4 cycles.
  auto c = compile(
      "__kernel void k(__global float* o) {\n"
      "  __local float t[16];\n"
      "  int i = get_local_id(0);\n"
      "  t[i] = o[i];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  o[i] = t[0] + t[1] + t[2] + t[3];\n"
      "}\n");
  cdfg::BlockDfg dfg = largestBlockDfg(*c->module->findFunction("k"));
  ResourceBudget onePort;
  onePort.localReadPorts = 1;
  ResourceBudget fourPorts;
  fourPorts.localReadPorts = 4;
  const int narrow = listSchedule(dfg, onePort).latency;
  const int wide = listSchedule(dfg, fourPorts).latency;
  EXPECT_GT(narrow, wide);
}

TEST(ListScheduler, LatencyBetweenCriticalPathAndSerialSum) {
  const char* kernels[] = {
      "__kernel void a(__global float* o) { o[0] = o[1] * o[2] + o[3]; }",
      "__kernel void a(__global float* o) {\n"
      "  float x = o[0]; float y = o[1];\n"
      "  o[2] = sqrt(x * x + y * y);\n"
      "}",
      "__kernel void a(__global int* o) {\n"
      "  int i = get_global_id(0);\n"
      "  o[i] = (i * 17 + 3) % 251;\n"
      "}",
  };
  for (const char* src : kernels) {
    auto c = compile(src);
    cdfg::BlockDfg dfg = largestBlockDfg(*c->module->findFunction("a"));
    const int latency = listSchedule(dfg, ResourceBudget{}).latency;
    int serial = 0;
    for (const auto& n : dfg.nodes()) serial += std::max(1, n.latency);
    EXPECT_GE(latency, dfg.criticalPathLength()) << src;
    EXPECT_LE(latency, serial) << src;
  }
}

// ---------------------------------------------------------------------------
// MII
// ---------------------------------------------------------------------------

PipelineGraph makeChain(std::initializer_list<int> latencies) {
  PipelineGraph g;
  for (int l : latencies) {
    PipeNode n;
    n.latency = l;
    g.nodes.push_back(n);
  }
  for (std::size_t i = 1; i < g.nodes.size(); ++i) {
    g.edges.push_back(PipeEdge{static_cast<int>(i - 1), static_cast<int>(i),
                               g.nodes[i - 1].latency, 0});
  }
  return g;
}

TEST(Mii, NoRecurrenceGivesOne) {
  PipelineGraph g = makeChain({3, 5, 2});
  EXPECT_EQ(computeRecMII(g), 1);
}

TEST(Mii, SelfRecurrenceDividesByDistance) {
  PipelineGraph g = makeChain({4});
  g.edges.push_back(PipeEdge{0, 0, 4, 1});  // self loop, distance 1
  EXPECT_EQ(computeRecMII(g), 4);
  g.edges.back().distance = 2;
  EXPECT_EQ(computeRecMII(g), 2);
}

TEST(Mii, CycleThroughChain) {
  // 0 -> 1 -> 2 (delays 3, 5) with a back edge 2 -> 0 (delay 2, distance 1):
  // cycle delay 10, distance 1 => RecMII 10.
  PipelineGraph g = makeChain({3, 5, 2});
  g.edges.push_back(PipeEdge{2, 0, 2, 1});
  EXPECT_EQ(computeRecMII(g), 10);
}

TEST(Mii, ResMiiFromPorts) {
  PipelineGraph g;
  for (int i = 0; i < 6; ++i) {
    PipeNode n;
    n.latency = 2;
    n.resource = {ResourceClass::LocalRead, 1};
    g.nodes.push_back(n);
  }
  ResourceBudget budget;
  budget.localReadPorts = 2;
  EXPECT_EQ(computeResMII(g, budget), 3);  // 6 reads / 2 ports
}

TEST(Mii, ResMiiFromDspUnits) {
  PipelineGraph g;
  for (int i = 0; i < 4; ++i) {
    PipeNode n;
    n.latency = 5;
    n.resource = {ResourceClass::Dsp, 3};
    g.nodes.push_back(n);
  }
  ResourceBudget budget;
  budget.dspUnits = 6;
  EXPECT_EQ(computeResMII(g, budget), 2);  // 12 dsp-units / 6
}

TEST(Mii, LoopEngineForcesIi) {
  PipelineGraph g = makeChain({2});
  PipeNode loop;
  loop.latency = 40;
  loop.resource = {ResourceClass::LoopEngine, 1};
  loop.blockingCycles = 40;
  g.nodes.push_back(loop);
  EXPECT_GE(computeResMII(g, ResourceBudget{}), 40);
}

TEST(Mii, MaxOfRecAndRes) {
  PipelineGraph g = makeChain({8});
  g.edges.push_back(PipeEdge{0, 0, 8, 1});  // RecMII 8
  g.nodes[0].resource = {ResourceClass::LocalRead, 1};
  ResourceBudget budget;
  budget.localReadPorts = 1;  // ResMII 1
  EXPECT_EQ(computeMII(g, budget), 8);
}

// ---------------------------------------------------------------------------
// SMS
// ---------------------------------------------------------------------------

TEST(Sms, EmptyGraph) {
  SmsResult r = swingModuloSchedule(PipelineGraph{}, ResourceBudget{});
  EXPECT_EQ(r.ii, 1);
  EXPECT_EQ(r.depth, 0);
}

TEST(Sms, AchievesMiiOnSimpleChain) {
  PipelineGraph g = makeChain({3, 5, 2});
  SmsResult r = swingModuloSchedule(g, ResourceBudget{});
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.ii, 1);
  EXPECT_GE(r.depth, 10);  // 3+5+2
}

TEST(Sms, RespectsDependenceInSchedule) {
  PipelineGraph g = makeChain({3, 5, 2});
  SmsResult r = swingModuloSchedule(g, ResourceBudget{});
  ASSERT_EQ(r.startCycle.size(), 3u);
  EXPECT_GE(r.startCycle[1], r.startCycle[0] + 3);
  EXPECT_GE(r.startCycle[2], r.startCycle[1] + 5);
}

TEST(Sms, ResourceContentionRaisesIi) {
  PipelineGraph g;
  for (int i = 0; i < 4; ++i) {
    PipeNode n;
    n.latency = 2;
    n.resource = {ResourceClass::LocalWrite, 1};
    g.nodes.push_back(n);
  }
  ResourceBudget budget;
  budget.localWritePorts = 1;
  SmsResult r = swingModuloSchedule(g, budget);
  EXPECT_TRUE(r.feasible);
  EXPECT_GE(r.ii, 4);
  // Modulo slots must not collide: all four writes in distinct slots mod II.
  std::vector<int> slots;
  for (int s : r.startCycle) slots.push_back(((s % r.ii) + r.ii) % r.ii);
  std::sort(slots.begin(), slots.end());
  EXPECT_EQ(std::unique(slots.begin(), slots.end()), slots.end());
}

TEST(Sms, RecurrenceRaisesIi) {
  PipelineGraph g = makeChain({6, 6});
  g.edges.push_back(PipeEdge{1, 0, 6, 1});  // cycle delay 12, distance 1
  SmsResult r = swingModuloSchedule(g, ResourceBudget{});
  EXPECT_GE(r.ii, 12);
}

// Property sweep: on random graphs, SMS must satisfy II >= MII, honour all
// distance-0 dependences, and produce collision-free reservations.
class SmsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SmsPropertyTest, InvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int n = 5 + static_cast<int>(rng.nextBelow(20));
  PipelineGraph g;
  for (int i = 0; i < n; ++i) {
    PipeNode node;
    node.latency = 1 + static_cast<int>(rng.nextBelow(9));
    const int r = static_cast<int>(rng.nextBelow(4));
    if (r == 1) node.resource = {ResourceClass::LocalRead, 1};
    if (r == 2) node.resource = {ResourceClass::LocalWrite, 1};
    if (r == 3) node.resource = {ResourceClass::Dsp, 1 + static_cast<int>(rng.nextBelow(4))};
    g.nodes.push_back(node);
  }
  // Forward edges only (acyclic skeleton) + a few recurrences.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.nextBelow(4) == 0) {
        g.edges.push_back(PipeEdge{i, j, g.nodes[static_cast<std::size_t>(i)].latency, 0});
      }
    }
  }
  for (int r = 0; r < 2; ++r) {
    const int a = static_cast<int>(rng.nextBelow(n));
    const int b = static_cast<int>(rng.nextBelow(n));
    if (a < b) {
      g.edges.push_back(PipeEdge{b, a, g.nodes[static_cast<std::size_t>(b)].latency,
                                 1 + static_cast<int>(rng.nextBelow(3))});
    }
  }

  ResourceBudget budget;
  budget.localReadPorts = 2;
  budget.localWritePorts = 1;
  budget.dspUnits = 6;
  SmsResult result = swingModuloSchedule(g, budget);
  ASSERT_TRUE(result.feasible);
  EXPECT_GE(result.ii, result.mii);
  EXPECT_GE(result.ii, computeRecMII(g));
  EXPECT_GE(result.ii, computeResMII(g, budget));

  // Distance-0 dependences hold exactly; recurrences hold modulo II.
  for (const PipeEdge& e : g.edges) {
    const int from = result.startCycle[static_cast<std::size_t>(e.from)];
    const int to = result.startCycle[static_cast<std::size_t>(e.to)];
    EXPECT_GE(to, from + e.delay - result.ii * e.distance)
        << "edge " << e.from << "->" << e.to;
  }
  // Reservation-table capacity per slot per class.
  std::map<std::pair<int, int>, int> used;
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    const auto& node = g.nodes[i];
    if (node.resource.rc == ResourceClass::None) continue;
    const int slot = ((result.startCycle[i] % result.ii) + result.ii) % result.ii;
    used[{static_cast<int>(node.resource.rc), slot}] += node.resource.units;
  }
  for (const auto& [key, units] : used) {
    EXPECT_LE(units, budget.capacity(static_cast<ResourceClass>(key.first)));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SmsPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace flexcl::sched
