#include <gtest/gtest.h>

#include "ocl/parser.h"

namespace flexcl::ocl {
namespace {

std::unique_ptr<Program> parse(const std::string& src,
                               DiagnosticEngine* diagsOut = nullptr) {
  DiagnosticEngine diags;
  auto program = parseOpenCl(src, diags);
  if (diagsOut) *diagsOut = diags;
  return program;
}

TEST(Parser, MinimalKernel) {
  auto p = parse("__kernel void k(__global float* a) { a[0] = 1.0f; }");
  ASSERT_TRUE(p);
  ASSERT_EQ(p->functions.size(), 1u);
  const FunctionDecl& fn = *p->functions[0];
  EXPECT_TRUE(fn.isKernel);
  EXPECT_EQ(fn.name, "k");
  ASSERT_EQ(fn.params.size(), 1u);
  EXPECT_TRUE(fn.params[0]->type->isPointer());
  EXPECT_EQ(fn.params[0]->type->addressSpace(), ir::AddressSpace::Global);
}

TEST(Parser, ScalarAndPointerParams) {
  auto p = parse(
      "__kernel void k(__global int* in, __global int* out, int n, float s) {}");
  ASSERT_TRUE(p);
  const FunctionDecl& fn = *p->functions[0];
  ASSERT_EQ(fn.params.size(), 4u);
  EXPECT_TRUE(fn.params[2]->type->isInt());
  EXPECT_TRUE(fn.params[3]->type->isFloat());
}

TEST(Parser, LocalArrayDeclaration) {
  auto p = parse(
      "__kernel void k(__global float* a) {"
      "  __local float tile[16][17];"
      "  tile[0][1] = a[0];"
      "}");
  ASSERT_TRUE(p);
}

TEST(Parser, ForLoopWithUnrollPragma) {
  DiagnosticEngine diags;
  auto p = parse(
      "__kernel void k(__global int* a) {\n"
      "#pragma unroll 4\n"
      "  for (int i = 0; i < 16; i++) { a[i] = i; }\n"
      "}\n",
      &diags);
  ASSERT_TRUE(p) << diags.str();
  const auto& body = p->functions[0]->body->body;
  ASSERT_EQ(body.size(), 1u);
  ASSERT_EQ(body[0]->kind(), Stmt::Kind::For);
  EXPECT_EQ(static_cast<const ForStmt&>(*body[0]).unrollHint, 4);
}

TEST(Parser, ReqdWorkGroupSizeAttribute) {
  auto p = parse(
      "__kernel __attribute__((reqd_work_group_size(64, 1, 1))) "
      "void k(__global int* a) { a[0] = 0; }");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->functions[0]->reqdWorkGroupSize[0], 64u);
  EXPECT_EQ(p->functions[0]->reqdWorkGroupSize[1], 1u);
}

TEST(Parser, HelperFunctionAndCall) {
  auto p = parse(
      "float square(float x) { return x * x; }\n"
      "__kernel void k(__global float* a) { a[0] = square(a[1]); }\n");
  ASSERT_TRUE(p);
  ASSERT_EQ(p->functions.size(), 2u);
  EXPECT_FALSE(p->functions[0]->isKernel);
  EXPECT_TRUE(p->functions[1]->isKernel);
}

TEST(Parser, StructTypedef) {
  auto p = parse(
      "typedef struct { float x; float y; } Point;\n"
      "__kernel void k(__global Point* pts, __global float* out) {\n"
      "  out[0] = pts[0].x + pts[0].y;\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Parser, VectorTypesAndConstruct) {
  auto p = parse(
      "__kernel void k(__global float4* a, __global float* out) {\n"
      "  float4 v = a[0];\n"
      "  float4 w = (float4)(1.0f, 2.0f, 3.0f, 4.0f);\n"
      "  out[0] = v.x + w.y + v.s2;\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto p = parse("__kernel void k(__global int* a) { a[0] = 1 + 2 * 3; }");
  ASSERT_TRUE(p);
  // Dig out the assignment value: Binary(Add, 1, Binary(Mul, 2, 3)).
  const auto& stmt = *p->functions[0]->body->body[0];
  const auto& expr = *static_cast<const ExprStmt&>(stmt).expr;
  const auto& assign = static_cast<const AssignExpr&>(expr);
  const Expr* value = assign.value.get();
  while (value->kind() == Expr::Kind::Cast) {
    value = static_cast<const CastExpr*>(value)->operand.get();
  }
  ASSERT_EQ(value->kind(), Expr::Kind::Binary);
  EXPECT_EQ(static_cast<const BinaryExpr*>(value)->op, BinaryOp::Add);
}

TEST(Parser, ConditionalExpression) {
  auto p = parse("__kernel void k(__global int* a, int n) { a[0] = n > 0 ? n : -n; }");
  ASSERT_TRUE(p);
}

TEST(Parser, WhileAndDoWhile) {
  auto p = parse(
      "__kernel void k(__global int* a, int n) {\n"
      "  int i = 0;\n"
      "  while (i < n) { a[i] = i; i++; }\n"
      "  do { i--; } while (i > 0);\n"
      "}\n");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->functions[0]->body->body.size(), 3u);
}

TEST(Parser, BreakContinue) {
  auto p = parse(
      "__kernel void k(__global int* a, int n) {\n"
      "  for (int i = 0; i < n; i++) {\n"
      "    if (i == 3) continue;\n"
      "    if (i == 7) break;\n"
      "    a[i] = i;\n"
      "  }\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Parser, CastExpression) {
  auto p = parse("__kernel void k(__global float* a, int n) { a[0] = (float)n; }");
  ASSERT_TRUE(p);
}

TEST(Parser, CompoundAssignOperators) {
  auto p = parse(
      "__kernel void k(__global int* a) {\n"
      "  int x = 1;\n"
      "  x += 2; x -= 1; x *= 3; x /= 2; x %= 5; x <<= 1; x >>= 1; x &= 7;\n"
      "  x |= 8; x ^= 3;\n"
      "  a[0] = x;\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Parser, MissingSemicolonReported) {
  DiagnosticEngine diags;
  auto p = parse("__kernel void k(__global int* a) { a[0] = 1 }", &diags);
  EXPECT_FALSE(p);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, UnbalancedBraceReported) {
  DiagnosticEngine diags;
  auto p = parse("__kernel void k(__global int* a) { if (1) { a[0] = 1; }", &diags);
  EXPECT_FALSE(p);
  EXPECT_TRUE(diags.hasErrors());
}

TEST(Parser, BarrierCallParses) {
  // CLK_LOCAL_MEM_FENCE is predefined by the preprocessor.
  DiagnosticEngine diags;
  auto p = parse(
      "__kernel void k(__global int* a) {\n"
      "  __local int tile[8];\n"
      "  tile[get_local_id(0)] = a[get_global_id(0)];\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  a[get_global_id(0)] = tile[0];\n"
      "}\n",
      &diags);
  EXPECT_TRUE(p) << diags.str();
}

TEST(Parser, SizeofFolds) {
  auto p = parse("__kernel void k(__global int* a) { a[0] = sizeof(float); }");
  ASSERT_TRUE(p);
}

TEST(Parser, TypedefScalarAlias) {
  auto p = parse(
      "typedef float real;\n"
      "__kernel void k(__global real* a) { real x = a[0]; a[1] = x; }\n");
  ASSERT_TRUE(p);
}

}  // namespace
}  // namespace flexcl::ocl
