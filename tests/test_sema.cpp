#include <gtest/gtest.h>

#include "ir/lower.h"
#include "ocl/parser.h"
#include "ocl/sema.h"

namespace flexcl::ocl {
namespace {

std::unique_ptr<Program> parse(const std::string& src,
                               DiagnosticEngine* diagsOut = nullptr) {
  DiagnosticEngine diags;
  auto program = parseOpenCl(src, diags);
  if (diagsOut) *diagsOut = diags;
  return program;
}

/// Finds the first expression-statement of a kernel's body.
const Expr* firstExpr(const Program& p) {
  for (const auto& s : p.functions.back()->body->body) {
    if (s->kind() == Stmt::Kind::Expr) return static_cast<ExprStmt&>(*s).expr.get();
  }
  return nullptr;
}

TEST(Sema, UndeclaredIdentifierRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse("__kernel void k(__global int* a) { a[0] = qux; }", &diags));
  EXPECT_NE(diags.str().find("undeclared"), std::string::npos);
}

TEST(Sema, RedefinitionInSameScopeRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse("__kernel void k(__global int* a) { int x = 0; float x = 1.0f; a[0]=x; }",
            &diags));
}

TEST(Sema, ShadowingInNestedScopeAllowed) {
  EXPECT_TRUE(parse(
      "__kernel void k(__global int* a) { int x = 0; { int x2 = 1; { float x3 = 2.0f; "
      "a[0] = x + x2 + (int)x3; } } }"));
}

TEST(Sema, KernelPrivatePointerParamRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse("__kernel void k(int* a) { a[0] = 1; }", &diags));
  EXPECT_NE(diags.str().find("__global"), std::string::npos);
}

TEST(Sema, HelperPrivatePointerParamAllowed) {
  EXPECT_TRUE(parse(
      "void init(int* p) { p[0] = 1; }\n"
      "__kernel void k(__global int* a) { int tmp[2]; init(tmp); a[0] = tmp[0]; }\n"));
}

TEST(Sema, ArithmeticPromotionIntToFloat) {
  auto p = parse("__kernel void k(__global float* a, int n) { a[0] = n + 1.5f; }");
  ASSERT_TRUE(p);
  const Expr* e = firstExpr(*p);
  ASSERT_TRUE(e);
  const auto& assign = static_cast<const AssignExpr&>(*e);
  EXPECT_TRUE(assign.value->type->isFloat());
}

TEST(Sema, ComparisonYieldsBool) {
  auto p = parse(
      "__kernel void k(__global int* a, int n) { if (n < 3) { a[0] = 1; } }");
  ASSERT_TRUE(p);
}

TEST(Sema, PointerArithmeticKeepsPointerType) {
  auto p = parse(
      "__kernel void k(__global float* a, int n) { __global float* p = a + n; "
      "p[0] = 1.0f; }");
  ASSERT_TRUE(p);
}

TEST(Sema, CallArgumentCountChecked) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "float f(float a, float b) { return a + b; }\n"
      "__kernel void k(__global float* o) { o[0] = f(1.0f); }\n",
      &diags));
}

TEST(Sema, UnknownFunctionRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse("__kernel void k(__global float* o) { o[0] = mystery(1.0f); }", &diags));
}

TEST(Sema, BuiltinGetGlobalIdResolved) {
  auto p = parse("__kernel void k(__global int* a) { a[get_global_id(0)] = 1; }");
  ASSERT_TRUE(p);
}

TEST(Sema, VectorComponentAccess) {
  auto p = parse(
      "__kernel void k(__global float4* v, __global float* o) {\n"
      "  o[0] = v[0].x + v[0].w + v[0].s1;\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Sema, InvalidVectorComponentRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global float2* v, __global float* o) { o[0] = v[0].z; }",
      &diags));
}

TEST(Sema, StructFieldAccessResolved) {
  auto p = parse(
      "typedef struct { float lat; float lng; } Rec;\n"
      "__kernel void k(__global Rec* r, __global float* o) {\n"
      "  o[0] = r[3].lat - r[3].lng;\n"
      "}\n");
  ASSERT_TRUE(p);
}

TEST(Sema, UnknownStructFieldRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "typedef struct { float a; } S;\n"
      "__kernel void k(__global S* s, __global float* o) { o[0] = s[0].b; }\n",
      &diags));
}

TEST(Sema, VoidFunctionCannotReturnValue) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse("__kernel void k(__global int* a) { return 3; a[0]=0; }", &diags));
}

TEST(Sema, NonVoidFunctionMustReturnValue) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "int f() { return; }\n__kernel void k(__global int* a) { a[0] = f(); }\n",
      &diags));
}

TEST(Sema, AssignmentToRValueRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(
      parse("__kernel void k(__global int* a) { (a[0] + 1) = 2; }", &diags));
}

TEST(Sema, ConstVariableNotAssignable) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global int* a) { const int c = 1; c = 2; a[0] = c; }",
      &diags));
}

TEST(Sema, VectorScalarBroadcast) {
  auto p = parse(
      "__kernel void k(__global float4* v) { v[0] = v[0] * 2.0f; }");
  ASSERT_TRUE(p);
}

TEST(Sema, VectorLaneMismatchRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global float4* a, __global float2* b) {\n"
      "  a[0] = a[0] + b[0];\n"
      "}\n",
      &diags));
}

TEST(Sema, ConditionMustBeScalar) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "typedef struct { int x; } S;\n"
      "__kernel void k(__global S* s, __global int* o) { if (s[0]) { o[0]=1; } }\n",
      &diags));
}

TEST(Sema, KernelsCannotBeCalled) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void other(__global int* a) { a[0] = 1; }\n"
      "__kernel void k(__global int* a) { other(a); }\n",
      &diags));
}


TEST(Sema, BreakOutsideLoopRejectedAtLowering) {
  // Sema lets it parse; the lowerer rejects it.
  DiagnosticEngine diags;
  auto program = parseOpenCl(
      "__kernel void k(__global int* a) { break; a[0] = 1; }", diags);
  ASSERT_TRUE(program);  // parse + sema fine
  auto module = ir::lowerProgram(*program, diags);
  EXPECT_TRUE(diags.hasErrors());
  EXPECT_NE(diags.str().find("break outside"), std::string::npos);
}

TEST(Sema, ArrayExtentMustBeConstant) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global int* a, int n) { int t[n]; t[0] = 1; a[0] = t[0]; }",
      &diags));
}

TEST(Sema, VoidVariableRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse("__kernel void k(__global int* a) { void v; a[0] = 0; }",
                     &diags));
}

TEST(Sema, SubscriptOnScalarRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global int* a, int n) { a[0] = n[2]; }", &diags));
}

TEST(Sema, MemberAccessOnScalarRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global int* a, int n) { a[0] = n.x; }", &diags));
}

TEST(Sema, ArrowOnNonPointerRejected) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "typedef struct { int v; } S;\n"
      "__kernel void k(__global S* s, __global int* o) { S local1; o[0] = "
      "local1->v; }\n",
      &diags));
}

TEST(Sema, WorkItemBuiltinArityChecked) {
  DiagnosticEngine diags;
  EXPECT_FALSE(parse(
      "__kernel void k(__global int* a) { a[0] = get_global_id(0, 1); }",
      &diags));
}

}  // namespace
}  // namespace flexcl::ocl
