#include <gtest/gtest.h>

#include "dse/heuristic16.h"
#include "ir/lower.h"

namespace flexcl::dse {
namespace {

struct Fixture {
  std::unique_ptr<ir::CompiledProgram> program;
  std::vector<std::vector<std::uint8_t>> buffers;
  model::LaunchInfo launch;
  model::FlexCl flexcl{model::Device::virtex7()};

  Fixture() {
    DiagnosticEngine diags;
    program = ir::compileOpenCl(
        "__kernel void k(__global const float* a, __global float* b) {\n"
        "  int i = get_global_id(0);\n"
        "  b[i] = sqrt(a[i] * a[i] + 2.0f);\n"
        "}\n",
        diags);
    EXPECT_TRUE(program) << diags.str();
    buffers = {std::vector<std::uint8_t>(512 * 4, 1),
               std::vector<std::uint8_t>(512 * 4)};
    launch.fn = program->module->functions().front().get();
    launch.range.global = {512, 1, 1};
    launch.args = {interp::KernelArg::buffer(0), interp::KernelArg::buffer(1)};
    launch.buffers = &buffers;
  }
};

TEST(DesignSpace, EnumeratesAllCombinations) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  SpaceOptions opts;
  auto space = enumerateDesignSpace(range, /*kernelHasBarriers=*/false, opts);
  // 4 wg x 2 pipe x 4 pe x 3 cu x 2 modes = 192.
  EXPECT_EQ(space.size(), 192u);
  // All distinct.
  std::set<std::uint64_t> ids;
  for (const auto& dp : space) ids.insert(dp.stableId());
  EXPECT_EQ(ids.size(), space.size());
}

TEST(DesignSpace, BarrierKernelsGetOneMode) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  auto space = enumerateDesignSpace(range, /*kernelHasBarriers=*/true);
  EXPECT_EQ(space.size(), 96u);
  for (const auto& dp : space) {
    EXPECT_EQ(dp.commMode, model::CommMode::Barrier);
  }
}

TEST(DesignSpace, NonDividingWorkGroupsDropped) {
  interp::NdRange range;
  range.global = {96, 1, 1};  // 32 divides; 64/128/256 do not
  auto space = enumerateDesignSpace(range, false);
  for (const auto& dp : space) {
    EXPECT_EQ(96u % dp.workGroupSize[0], 0u);
  }
  EXPECT_FALSE(space.empty());
}

TEST(DesignSpace, TwoDimensionalShapes) {
  interp::NdRange range;
  range.global = {32, 32, 1};
  auto space = enumerateDesignSpace(range, false);
  ASSERT_FALSE(space.empty());
  for (const auto& dp : space) {
    EXPECT_GT(dp.workGroupSize[1], 0u);
    EXPECT_EQ(32u % dp.workGroupSize[0], 0u);
    EXPECT_EQ(32u % dp.workGroupSize[1], 0u);
  }
}

TEST(DesignSpace, BaselineIsMinimal) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  const model::DesignPoint base = unoptimizedBaseline(range);
  EXPECT_FALSE(base.workItemPipeline);
  EXPECT_EQ(base.peParallelism, 1);
  EXPECT_EQ(base.numComputeUnits, 1);
  EXPECT_EQ(base.commMode, model::CommMode::Barrier);
}

TEST(Explorer, ExhaustiveSearchProducesConsistentMetrics) {
  Fixture f;
  Explorer explorer(f.flexcl, f.launch);
  SpaceOptions opts;
  opts.workGroupSizes = {32, 64};
  opts.peParallelism = {1, 4};
  opts.computeUnits = {1, 2, 4};  // CU=4 + pipelining triggers SDAccel failures
  auto space = enumerateDesignSpace(f.launch.range, explorer.kernelHasBarriers(),
                                    opts);
  ASSERT_FALSE(space.empty());
  ExplorationResult result = explorer.explore(space);

  ASSERT_EQ(result.designs.size(), space.size());
  EXPECT_GE(result.bestBySim, 0);
  EXPECT_GE(result.bestByFlexcl, 0);
  EXPECT_GE(result.pickGapPct, 0.0);
  EXPECT_GT(result.speedupVsBaseline, 1.0);
  EXPECT_GT(result.avgFlexclErrorPct, 0.0);
  EXPECT_LT(result.avgFlexclErrorPct, 40.0);
  // SDAccel is worse on average and fails on part of the space.
  EXPECT_GT(result.avgSdaccelErrorPct, result.avgFlexclErrorPct);
  EXPECT_GT(result.sdaccelFailRatePct, 0.0);
  EXPECT_LT(result.sdaccelFailRatePct, 100.0);
  // The simulator pass costs (much) more wall time than the model pass.
  EXPECT_GT(result.simSeconds, result.flexclSeconds);
}

TEST(Explorer, BestBySimIsActuallyMinimal) {
  Fixture f;
  Explorer explorer(f.flexcl, f.launch);
  SpaceOptions opts;
  opts.workGroupSizes = {32, 64};
  opts.peParallelism = {1, 2};
  opts.computeUnits = {1, 2};
  auto space = enumerateDesignSpace(f.launch.range, false, opts);
  ExplorationResult result = explorer.explore(space);
  const double best =
      result.designs[static_cast<std::size_t>(result.bestBySim)].simCycles;
  for (const auto& d : result.designs) {
    if (d.simCycles > 0) EXPECT_GE(d.simCycles, best);
  }
}

TEST(Heuristic16, ReturnsDesignFromAxisValues) {
  Fixture f;
  SpaceOptions opts;
  opts.workGroupSizes = {32, 64};
  opts.peParallelism = {1, 2, 4};
  opts.computeUnits = {1, 2};
  auto space = enumerateDesignSpace(f.launch.range, false, opts);
  HeuristicResult r = heuristicSearch(f.flexcl, f.launch, space);
  EXPECT_GT(r.evaluations, 0);
  // Far fewer coarse evaluations than the space size (coordinate descent).
  EXPECT_LT(r.evaluations, static_cast<int>(space.size()));
  // Chosen values come from the enumerated axes.
  EXPECT_TRUE(r.chosen.workGroupSize[0] == 32 || r.chosen.workGroupSize[0] == 64);
  EXPECT_TRUE(r.chosen.peParallelism == 1 || r.chosen.peParallelism == 2 ||
              r.chosen.peParallelism == 4);
}

TEST(Heuristic16, CoarseModelAssumesIndependentKnobs) {
  // The defining flaw of the [16]-style model (paper §2.2): parallelism knobs
  // are independent perfect dividers — doubling CUs exactly halves the cost,
  // with no resource clamping or scheduling overhead.
  Fixture f;
  model::DesignPoint one;
  model::DesignPoint two = one;
  two.numComputeUnits = 2;
  model::DesignPoint wide = one;
  wide.peParallelism = 8;
  const double c1 = coarseCost(f.flexcl, f.launch, one);
  EXPECT_NEAR(coarseCost(f.flexcl, f.launch, two), c1 / 2, c1 * 1e-9);
  EXPECT_NEAR(coarseCost(f.flexcl, f.launch, wide), c1 / 8, c1 * 1e-9);
  // Barrier mode charges memory + compute serially; pipeline the max.
  model::DesignPoint barrier = one;
  barrier.commMode = model::CommMode::Barrier;
  model::DesignPoint pipeline = one;
  pipeline.commMode = model::CommMode::Pipeline;
  EXPECT_GE(coarseCost(f.flexcl, f.launch, barrier),
            coarseCost(f.flexcl, f.launch, pipeline));
}

}  // namespace
}  // namespace flexcl::dse
