// flexcl — command-line driver.
//
// Estimate a kernel from a .cl file, explore its design space, or dump the
// compiled IR. This is the "downstream user" entry point: no C++ required.
//
//   flexcl estimate <file.cl> <kernel> --global N [options]
//   flexcl explore  <file.cl> <kernel> --global N [options]
//   flexcl ir       <file.cl>
//   flexcl serve    [--store DIR] [--socket PATH] [--jobs N]
//   flexcl stats    --socket PATH [--format text|json]
//   flexcl cache    <stats|verify|clear> --store DIR
//
// Kernel arguments are synthesised automatically: every pointer argument gets
// a buffer of --elems elements (default: global size) filled with small
// pseudo-random values; scalar int arguments receive --elems, scalar float
// arguments 1.0. That matches how the bundled workloads drive their kernels
// and is enough for profiling-based analysis of most kernels.
//
// `--store DIR` on estimate/explore/lint/explain routes the command through
// the serving dispatcher: the answer is the serve protocol's JSON response
// line, warm-started from and persisted to DIR (DESIGN.md §12).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "analysis/analyze.h"
#include "dse/explorer.h"
#include "ir/lower.h"
#include "ir/printer.h"
#include "model/bottleneck.h"
#include "model/resource_estimate.h"
#include "obs/explain.h"
#include "obs/log.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "serve/json.h"
#include "runtime/compile_cache.h"
#include "runtime/eval_cache.h"
#include "serve/server.h"
#include "serve/store/codec.h"
#include "serve/store/store.h"
#include "sim/system_sim.h"
#include "support/rng.h"
#include "workloads/synth_args.h"

using namespace flexcl;

namespace {

struct CliOptions {
  std::string command;
  std::string file;
  std::string kernel;
  std::uint64_t global = 1024;
  std::uint64_t globalY = 1;
  std::uint64_t elems = 0;  // 0 = use global size
  std::string device = "virtex7";
  // Design point (estimate mode).
  std::uint32_t wg = 64;
  std::uint32_t wgY = 1;
  bool pipeline = true;
  bool loopPipeline = false;
  bool wgPipeline = false;
  int pe = 1;
  int cu = 1;
  std::string mode = "pipeline";
  bool simulate = false;
  /// Evaluation jobs for `explore`; 0 = hardware concurrency.
  int jobs = 0;
  // Lint mode.
  std::string format = "text";
  bool crossCheck = true;
  /// Lint exit-code policy: what counts as failure (exit 1).
  ///   "error"   lint errors only (the default, pre-flag behaviour)
  ///   "race"    additionally a racy race-verifier verdict
  ///   "unknown" additionally an unknown (unproven) verdict
  std::string failOn = "error";
  // Observability (DESIGN.md §9/§14).
  std::string tracePath;    ///< Chrome trace JSON, written on exit
  std::string metricsPath;  ///< counter/gauge registry JSON, written on exit
  std::string logJsonPath;  ///< structured line-JSON event log
  double slowMs = 250;      ///< slow-request threshold for --log-json
  // Serving / persistence (DESIGN.md §12).
  std::string storeDir;     ///< on-disk cache store directory
  std::string socketPath;   ///< serve: Unix-domain socket path
};

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  flexcl estimate <file.cl> <kernel> [--global N] [--global-y N]\n"
               "                  [--wg N] [--wg-y N] [--pe N] [--cu N]\n"
               "                  [--no-pipeline] [--loop-pipeline] [--wg-pipeline]\n"
               "                  [--mode barrier|pipeline]\n"
               "                  [--device virtex7|ku060] [--elems N] [--sim]\n"
               "  flexcl explain  <file.cl> <kernel> [estimate options]\n"
               "                  [--format text|json]\n"
               "                  (cycle-attribution breakdown of one estimate)\n"
               "  flexcl explore  <file.cl> <kernel> [--global N] [--global-y N]\n"
               "                  [--device ...] [--elems N] [--jobs N]\n"
               "                  (--jobs 0 = all hardware threads, the default)\n"
               "  flexcl lint     <file.cl> <kernel> [--global N] [--global-y N]\n"
               "                  [--wg N] [--wg-y N] [--elems N]\n"
               "                  [--format text|json] [--no-cross-check]\n"
               "                  [--fail-on error|race|unknown]\n"
               "                  (race: exit 1 on data races too; unknown:\n"
               "                  also when the race verdict is unproven)\n"
               "  flexcl ir       <file.cl>\n"
               "  flexcl serve    [--store DIR] [--socket PATH] [--jobs N]\n"
               "                  (line-delimited JSON requests on stdin and,\n"
               "                  with --socket, a local Unix socket)\n"
               "  flexcl stats    --socket PATH [--format text|json]\n"
               "                  (scrape a live daemon's metrics + health)\n"
               "  flexcl cache    <stats|verify|clear> --store DIR\n"
               "persistence (estimate/explore/lint/explain):\n"
               "  --store DIR     answer via the serving dispatcher backed by\n"
               "                  the on-disk cache store in DIR; prints the\n"
               "                  serve protocol's JSON response line\n"
               "observability (any command):\n"
               "  --trace out.json    write a Chrome trace (chrome://tracing,\n"
               "                      ui.perfetto.dev) of the phases executed\n"
               "  --metrics out.json  write the counter/gauge/histogram\n"
               "                      registry snapshot\n"
               "  --log-json out.log  append structured line-JSON events\n"
               "                      (request completions, lifecycle)\n"
               "  --slow-ms N         log full phase breakdowns for requests\n"
               "                      slower than N ms (default 250)\n");
  return 2;
}

bool parseArgs(int argc, char** argv, CliOptions* opts) {
  if (argc < 2) return false;
  opts->command = argv[1];
  int i = 2;
  if (opts->command != "serve" && opts->command != "stats") {
    // Positionals: <file.cl> (or the cache action), then — except for
    // ir/cache — the kernel name.
    if (argc < 3) return false;
    opts->file = argv[2];
    i = 3;
    if (opts->command != "ir" && opts->command != "cache") {
      if (argc < 4) return false;
      opts->kernel = argv[3];
      i = 4;
    }
  }
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--global") opts->global = std::strtoull(value(), nullptr, 10);
    else if (arg == "--global-y") opts->globalY = std::strtoull(value(), nullptr, 10);
    else if (arg == "--elems") opts->elems = std::strtoull(value(), nullptr, 10);
    else if (arg == "--wg") opts->wg = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    else if (arg == "--wg-y") opts->wgY = static_cast<std::uint32_t>(std::strtoul(value(), nullptr, 10));
    else if (arg == "--pe") opts->pe = std::atoi(value());
    else if (arg == "--cu") opts->cu = std::atoi(value());
    else if (arg == "--no-pipeline") opts->pipeline = false;
    else if (arg == "--loop-pipeline") opts->loopPipeline = true;
    else if (arg == "--wg-pipeline") opts->wgPipeline = true;
    else if (arg == "--mode") opts->mode = value();
    else if (arg == "--device") opts->device = value();
    else if (arg == "--sim") opts->simulate = true;
    else if (arg == "--jobs") opts->jobs = std::atoi(value());
    else if (arg == "--format") opts->format = value();
    else if (arg == "--no-cross-check") opts->crossCheck = false;
    else if (arg == "--fail-on") opts->failOn = value();
    else if (arg == "--trace") opts->tracePath = value();
    else if (arg == "--metrics") opts->metricsPath = value();
    else if (arg == "--log-json") opts->logJsonPath = value();
    else if (arg == "--slow-ms") opts->slowMs = std::atof(value());
    else if (arg == "--store") opts->storeDir = value();
    else if (arg == "--socket") opts->socketPath = value();
    else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string readFile(const std::string& path, bool* ok) {
  std::ifstream in(path);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *ok = true;
  return ss.str();
}

int runIr(const CliOptions& opts) {
  bool ok = false;
  const std::string source = readFile(opts.file, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", opts.file.c_str());
    return 1;
  }
  DiagnosticEngine diags;
  auto program = ir::compileOpenCl(source, diags);
  if (!program) {
    std::fprintf(stderr, "%s", diags.str().c_str());
    return 1;
  }
  for (const auto& fn : program->module->functions()) {
    std::printf("%s\n", ir::printFunction(*fn).c_str());
  }
  return 0;
}

int runLint(const CliOptions& opts) {
  if (opts.failOn != "error" && opts.failOn != "race" &&
      opts.failOn != "unknown") {
    std::fprintf(stderr, "--fail-on must be error, race, or unknown (got %s)\n",
                 opts.failOn.c_str());
    return 2;
  }
  bool ok = false;
  const std::string source = readFile(opts.file, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", opts.file.c_str());
    return 1;
  }
  runtime::CompileCache compileCache;
  const auto compiled = compileCache.compile(source, opts.kernel);
  if (!compiled->ok) {
    std::fprintf(stderr, "%s: %s\n", opts.file.c_str(), compiled->error.c_str());
    return 1;
  }

  const std::uint64_t elems =
      opts.elems ? opts.elems : opts.global * std::max<std::uint64_t>(1, opts.globalY);
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<interp::KernelArg> args;
  workloads::synthesiseArgs(*compiled->fn, elems, &buffers, &args);

  interp::NdRange range;
  range.global = {opts.global, opts.globalY, 1};
  range.local = {opts.wg, opts.wgY, 1};

  analysis::LintOptions lintOpts;
  lintOpts.range = &range;
  lintOpts.args = &args;
  lintOpts.buffers = &buffers;
  lintOpts.profileCrossCheck = opts.crossCheck;
  const analysis::LintReport report =
      analysis::runLintPasses(*compiled->fn, lintOpts);

  if (opts.format == "json") {
    std::printf("%s\n", analysis::renderJson(report).c_str());
  } else {
    std::printf("%s", analysis::renderText(report).c_str());
  }
  bool fail = report.hasErrors();
  if (opts.failOn == "race" || opts.failOn == "unknown") {
    fail = fail || report.raceVerdict == "racy";
  }
  if (opts.failOn == "unknown") {
    fail = fail || report.raceVerdict == "unknown";
  }
  return fail ? 1 : 0;
}

int runEstimateOrExplore(const CliOptions& opts) {
  bool ok = false;
  const std::string source = readFile(opts.file, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", opts.file.c_str());
    return 1;
  }
  // Compilation goes through the runtime's CompileCache: one CLI invocation
  // compiles once anyway, but this also yields the kernel hash that keys the
  // evaluation cache below.
  runtime::CompileCache compileCache;
  const auto compiled = compileCache.compile(source, opts.kernel);
  if (!compiled->ok) {
    std::fprintf(stderr, "%s: %s\n", opts.file.c_str(), compiled->error.c_str());
    return 1;
  }
  const ir::Function* fn = compiled->fn;

  const std::uint64_t elems =
      opts.elems ? opts.elems : opts.global * std::max<std::uint64_t>(1, opts.globalY);
  std::vector<std::vector<std::uint8_t>> buffers;
  std::vector<interp::KernelArg> args;
  workloads::synthesiseArgs(*fn, elems, &buffers, &args);

  model::LaunchInfo launch;
  launch.fn = fn;
  launch.range.global = {opts.global, opts.globalY, 1};
  launch.args = args;
  launch.buffers = &buffers;

  model::FlexCl flexcl(opts.device == "ku060" ? model::Device::ku060()
                                              : model::Device::virtex7());

  if (opts.command == "explore") {
    runtime::EvalCache evalCache;
    dse::ExplorerOptions exOpts;
    exOpts.jobs = opts.jobs;  // 0 = runtime::defaultJobs()
    exOpts.evalCache = &evalCache;
    exOpts.kernelHash = compiled->hash;
    exOpts.lint = compiled->lint.get();
    dse::Explorer explorer(flexcl, launch, exOpts);
    const auto space = dse::enumerateDesignSpace(launch.range,
                                                 explorer.kernelHasBarriers());
    std::printf("exploring %zu designs of %s on %s (%d %s) ...\n",
                space.size(), opts.kernel.c_str(), flexcl.device().name.c_str(),
                explorer.jobs(), explorer.jobs() == 1 ? "job" : "jobs");
    const dse::ExplorationResult result = explorer.explore(space);
    if (result.skippedCount > 0) {
      std::printf("skipped %d statically infeasible design(s)\n",
                  result.skippedCount);
    }
    if (result.bestByFlexcl < 0) {
      std::fprintf(stderr, "exploration failed\n");
      return 1;
    }
    const auto& picked =
        result.designs[static_cast<std::size_t>(result.bestByFlexcl)];
    std::printf("best design (by FlexCL): %s\n", picked.design.str().c_str());
    std::printf("  estimated %.0f cycles = %.3f ms\n", picked.flexclCycles,
                flexcl.device().cyclesToMs(picked.flexclCycles));
    std::printf("  simulator-verified gap to optimum: %.2f%%\n", result.pickGapPct);
    std::printf("  model avg abs error over the space: %.1f%%\n",
                result.avgFlexclErrorPct);
    std::printf("  exploration: FlexCL %.2fs, simulator %.2fs\n",
                result.flexclSeconds, result.simSeconds);
    runtime::Stats stats = explorer.runtimeStats();
    stats.compile = compileCache.counters();
    std::printf("%s", stats.str().c_str());
    if (obs::enabled()) stats.publishTo(obs::Registry::global());
    return 0;
  }

  model::DesignPoint dp;
  dp.workGroupSize = {opts.wg, opts.wgY, 1};
  dp.workItemPipeline = opts.pipeline;
  dp.innerLoopPipeline = opts.loopPipeline;
  dp.workGroupPipeline = opts.wgPipeline;
  dp.peParallelism = opts.pe;
  dp.numComputeUnits = opts.cu;
  dp.commMode = opts.mode == "barrier" ? model::CommMode::Barrier
                                       : model::CommMode::Pipeline;

  if (opts.command == "explain") {
    const obs::ExplainReport report =
        obs::explainEstimate(flexcl, launch, dp, opts.kernel);
    if (opts.format == "json") {
      std::printf("%s\n", report.json().c_str());
    } else {
      std::printf("%s", report.text().c_str());
    }
    return report.estimate.ok ? 0 : 1;
  }

  const model::Estimate est = flexcl.estimate(launch, dp);
  if (!est.ok) {
    std::fprintf(stderr, "estimate failed: %s\n", est.error.c_str());
    return 1;
  }
  std::printf("kernel   : %s (%s)\n", opts.kernel.c_str(),
              flexcl.device().name.c_str());
  std::printf("design   : %s\n", dp.str().c_str());
  std::printf("mode     : %s%s\n", model::commModeName(est.mode),
              est.barrierCount > 0 ? " (forced by barrier intrinsics)" : "");
  std::printf("II       : comp %.1f (RecMII %d / ResMII %d), integrated %.1f\n",
              est.pe.iiComp, est.pe.recMii, est.pe.resMii, est.iiWi);
  std::printf("depth    : %.1f cycles, L_mem/wi %.1f cycles\n", est.pe.depth,
              est.memory.lMemWi);
  std::printf("parallel : %d PEs x %d CUs effective\n", est.cu.effectivePes,
              est.kernelCompute.effectiveCus);
  std::printf("estimate : %.0f cycles = %.3f ms @ %.0f MHz\n", est.cycles,
              est.milliseconds, flexcl.device().frequencyMhz);

  const cdfg::KernelAnalysis analysis = flexcl.analysisFor(launch, dp);
  const model::ResourceEstimate res =
      model::estimateResources(analysis, flexcl.device(), dp);
  std::printf("area     : %s\n", res.str().c_str());

  const model::BottleneckReport report = model::diagnose(est, dp);
  std::printf("%s", report.str().c_str());

  if (opts.simulate) {
    const interp::NdRange range = model::FlexCl::rangeFor(launch, dp);
    const sim::SimInput input =
        sim::prepareSimInput(*fn, range, args, buffers);
    const sim::SimResult sr = sim::simulate(input, flexcl.device(), dp);
    if (sr.ok && sr.cycles > 0) {
      std::printf("simulator: %.0f cycles (model error %+.1f%%)\n", sr.cycles,
                  (est.cycles - sr.cycles) / sr.cycles * 100.0);
    } else {
      std::printf("simulator failed: %s\n", sr.error.c_str());
    }
  }
  return 0;
}

/// `flexcl serve`: line-delimited JSON protocol on stdin/stdout and, with
/// --socket, a local Unix socket (DESIGN.md §12).
int runServe(const CliOptions& opts) {
  // A daemon always collects request metrics: the `metrics` op, `flexcl
  // stats` and the latency histograms are only useful if samples exist, and
  // the overhead contract keeps the cost off the result path.
  obs::setEnabled(true);
  serve::ServerOptions serveOpts;
  serveOpts.jobs = opts.jobs;
  serveOpts.socketPath = opts.socketPath;
  serveOpts.dispatcher.storeDir = opts.storeDir;
  serve::Server server(serveOpts);
  const int status = server.run(std::cin, std::cout);
  if (status != 0) {
    std::fprintf(stderr, "serve failed: %s\n", server.error().c_str());
  }
  if (obs::enabled()) {
    server.dispatcher().stats().publishTo(obs::Registry::global());
  }
  return status;
}

/// Sends `lines` to the daemon at `socketPath` and reads `expect` newline-
/// terminated response lines. Returns false (with a message on stderr) on any
/// transport failure.
bool exchangeOverSocket(const std::string& socketPath, const std::string& lines,
                        std::size_t expect, std::vector<std::string>* out) {
  sockaddr_un addr{};
  if (socketPath.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "socket path too long: %s\n", socketPath.c_str());
    return false;
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "cannot create socket: %s\n", std::strerror(errno));
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "cannot connect to '%s': %s\n", socketPath.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return false;
  }
  std::size_t off = 0;
  while (off < lines.size()) {
    const ssize_t n = ::send(fd, lines.data() + off, lines.size() - off, 0);
    if (n <= 0) {
      std::fprintf(stderr, "send to '%s' failed\n", socketPath.c_str());
      ::close(fd);
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  std::string buffer;
  char chunk[4096];
  while (std::count(buffer.begin(), buffer.end(), '\n') <
         static_cast<std::ptrdiff_t>(expect)) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      std::fprintf(stderr, "daemon closed the connection early\n");
      ::close(fd);
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::size_t start = 0;
  for (std::size_t nl = buffer.find('\n', start);
       nl != std::string::npos && out->size() < expect;
       nl = buffer.find('\n', start)) {
    out->push_back(buffer.substr(start, nl - start));
    start = nl + 1;
  }
  return out->size() == expect;
}

/// `flexcl stats --socket PATH`: scrape a live daemon via the `metrics` and
/// `health` ops and render a human summary (or the raw response lines with
/// --format json). The daemon keeps serving; nothing is restarted.
int runStats(const CliOptions& opts) {
  if (opts.socketPath.empty()) {
    std::fprintf(stderr, "flexcl stats requires --socket PATH\n");
    return 2;
  }
  std::vector<std::string> responses;
  if (!exchangeOverSocket(opts.socketPath,
                          "{\"id\": 1, \"op\": \"metrics\"}\n"
                          "{\"id\": 2, \"op\": \"health\"}\n",
                          2, &responses)) {
    return 1;
  }
  // Responses may stream out of order under --jobs N; correlate by id.
  serve::JsonValue metrics;
  serve::JsonValue health;
  for (const std::string& line : responses) {
    serve::JsonValue parsed;
    std::string error;
    if (!serve::parseJson(line, &parsed, &error) || !parsed.isObject()) {
      std::fprintf(stderr, "malformed response: %s\n", error.c_str());
      return 1;
    }
    if (parsed.numberOr("id", 0) == 1) metrics = std::move(parsed);
    else if (parsed.numberOr("id", 0) == 2) health = std::move(parsed);
  }
  if (opts.format == "json") {
    for (const std::string& line : responses) std::printf("%s\n", line.c_str());
    return 0;
  }
  if (!metrics.boolOr("ok", false) || !health.boolOr("ok", false)) {
    std::fprintf(stderr, "daemon answered with an error response\n");
    return 1;
  }
  const serve::JsonValue* m = metrics.find("result");
  const serve::JsonValue* h = health.find("result");
  if (m == nullptr || h == nullptr || !m->isObject() || !h->isObject()) {
    std::fprintf(stderr, "response missing result object\n");
    return 1;
  }
  std::printf("daemon    : %s, up %.1fs\n",
              h->stringOr("status", "unknown").c_str(),
              h->numberOr("uptime_s", 0));
  std::printf("requests  : %.0f total, %.0f ok, %.0f errors, %.0f in flight\n",
              m->numberOr("requests", 0), m->numberOr("ok", 0),
              m->numberOr("errors", 0), m->numberOr("in_flight", 0));
  if (const serve::JsonValue* store = m->find("store");
      store != nullptr && store->isObject()) {
    std::printf("store     : %.0f entries, %.0f bytes, %.0f quarantined (%s)\n",
                store->numberOr("entries", 0), store->numberOr("bytes", 0),
                store->numberOr("quarantined", 0),
                store->stringOr("dir", "").c_str());
  }
  if (const serve::JsonValue* registry = m->find("registry");
      registry != nullptr && registry->isObject()) {
    if (const serve::JsonValue* histograms = registry->find("histograms");
        histograms != nullptr && histograms->isObject() &&
        !histograms->fields.empty()) {
      std::printf("latency histograms (us):\n");
      std::printf("  %-40s %10s %10s %10s %10s %10s\n", "name", "count", "p50",
                  "p90", "p99", "max");
      for (const auto& [name, snap] : histograms->fields) {
        if (!snap.isObject()) continue;
        std::printf("  %-40s %10.0f %10.1f %10.1f %10.1f %10.1f\n",
                    name.c_str(), snap.numberOr("count", 0),
                    snap.numberOr("p50", 0), snap.numberOr("p90", 0),
                    snap.numberOr("p99", 0), snap.numberOr("max", 0));
      }
    }
  }
  return 0;
}

/// `flexcl cache <stats|verify|clear> --store DIR`: inspect or maintain an
/// on-disk cache store without starting a server.
int runCache(const CliOptions& opts) {
  if (opts.storeDir.empty()) {
    std::fprintf(stderr, "flexcl cache requires --store DIR\n");
    return 2;
  }
  serve::Store store(opts.storeDir);
  if (!store.ok()) {
    std::fprintf(stderr, "%s\n", store.error().c_str());
    return 1;
  }
  const std::string& action = opts.file;
  if (action == "clear") {
    std::printf("cleared %llu file(s) from %s\n",
                static_cast<unsigned long long>(store.clear()),
                store.dir().c_str());
    return 0;
  }
  std::uint64_t newlyQuarantined = 0;
  if (action == "verify") {
    newlyQuarantined = store.verify();
  } else if (action != "stats") {
    std::fprintf(stderr, "unknown cache action '%s'\n", action.c_str());
    return 2;
  }
  const serve::Store::StoreStats stats = store.stats();
  std::printf("store %s\n", store.dir().c_str());
  for (serve::Store::Family f : serve::Store::kAllFamilies) {
    const auto& fam = stats.perFamily[static_cast<std::uint32_t>(f) - 1];
    if (fam.entries == 0 && fam.quarantined == 0) continue;
    std::printf("  %-8s : %llu entries, %llu bytes",
                serve::Store::familyName(f),
                static_cast<unsigned long long>(fam.entries),
                static_cast<unsigned long long>(fam.bytes));
    if (fam.quarantined > 0) {
      std::printf(", %llu quarantined",
                  static_cast<unsigned long long>(fam.quarantined));
    }
    if (f == serve::Store::Family::Profile && fam.entries > 0) {
      // Provenance breakdown: profiles the static tier synthesized vs ones
      // the interpreter produced (bytes are already in the line above).
      std::uint64_t synthesized = 0;
      std::uint64_t interpreted = 0;
      store.loadAll(serve::Store::Family::Profile, serve::kProfileCodecVersion,
                    [&](std::uint64_t, const std::vector<std::uint8_t>& bytes) {
                      serve::ByteReader r(bytes);
                      interp::KernelProfile p;
                      if (!serve::decodeProfile(r, &p)) return;
                      if (p.provenance ==
                          interp::KernelProfile::Provenance::Synthesized) {
                        ++synthesized;
                      } else {
                        ++interpreted;
                      }
                    });
      std::printf(" (%llu synthesized, %llu interpreted)",
                  static_cast<unsigned long long>(synthesized),
                  static_cast<unsigned long long>(interpreted));
    }
    if (f == serve::Store::Family::Race && fam.entries > 0) {
      // Verdict breakdown, mirroring the profile provenance line.
      std::uint64_t raceFree = 0;
      std::uint64_t racy = 0;
      std::uint64_t unknown = 0;
      store.loadAll(serve::Store::Family::Race, serve::kRaceCodecVersion,
                    [&](std::uint64_t, const std::vector<std::uint8_t>& bytes) {
                      serve::ByteReader r(bytes);
                      analysis::raceverify::RaceVerdict v;
                      if (!serve::decodeRaceVerdict(r, &v)) return;
                      switch (v.kind) {
                        case analysis::raceverify::RaceVerdictKind::RaceFree:
                          ++raceFree;
                          break;
                        case analysis::raceverify::RaceVerdictKind::Racy:
                          ++racy;
                          break;
                        case analysis::raceverify::RaceVerdictKind::Unknown:
                          ++unknown;
                          break;
                      }
                    });
      std::printf(" (%llu race-free, %llu racy, %llu unknown)",
                  static_cast<unsigned long long>(raceFree),
                  static_cast<unsigned long long>(racy),
                  static_cast<unsigned long long>(unknown));
    }
    std::printf("\n");
  }
  std::printf("  total    : %llu entries, %llu bytes, %llu quarantined\n",
              static_cast<unsigned long long>(stats.totalEntries()),
              static_cast<unsigned long long>(stats.totalBytes()),
              static_cast<unsigned long long>(stats.totalQuarantined()));
  if (action == "verify") {
    std::printf("verify   : %llu entr%s newly quarantined\n",
                static_cast<unsigned long long>(newlyQuarantined),
                newlyQuarantined == 1 ? "y" : "ies");
    return newlyQuarantined > 0 ? 1 : 0;
  }
  return 0;
}

/// One-shot estimate/explore/lint/explain with --store: route through the
/// serving dispatcher so the run warm-starts from (and feeds) the store.
/// Prints the serve protocol's response line.
int runViaStore(const CliOptions& opts) {
  bool ok = false;
  const std::string source = readFile(opts.file, &ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", opts.file.c_str());
    return 1;
  }
  serve::DispatcherOptions dispOpts;
  dispOpts.storeDir = opts.storeDir;
  serve::Dispatcher dispatcher(dispOpts);
  if (!dispatcher.storeOk()) {
    std::fprintf(stderr, "%s\n", dispatcher.storeError().c_str());
    return 1;
  }
  serve::Request req;
  req.id = 1;
  req.op = opts.command;
  req.source = source;
  req.kernel = opts.kernel;
  req.device = opts.device;
  req.global = opts.global;
  req.globalY = opts.globalY;
  req.elems = opts.elems;
  req.design.workGroupSize = {opts.wg, opts.wgY, 1};
  req.design.workItemPipeline = opts.pipeline;
  req.design.innerLoopPipeline = opts.loopPipeline;
  req.design.workGroupPipeline = opts.wgPipeline;
  req.design.peParallelism = opts.pe;
  req.design.numComputeUnits = opts.cu;
  req.design.commMode = opts.mode == "barrier" ? model::CommMode::Barrier
                                               : model::CommMode::Pipeline;
  req.crossCheck = opts.crossCheck;
  req.simulate = opts.simulate;
  const std::string response = dispatcher.handle(req);
  std::printf("%s\n", response.c_str());
  if (obs::enabled()) {
    dispatcher.stats().publishTo(obs::Registry::global());
  }
  // The envelope's "ok" is the first in the line (the result JSON follows).
  const std::size_t okTrue = response.find("\"ok\": true");
  const std::size_t okFalse = response.find("\"ok\": false");
  return okTrue != std::string::npos &&
                 (okFalse == std::string::npos || okTrue < okFalse)
             ? 0
             : 1;
}

}  // namespace

/// Flushes --trace/--metrics output files after the command ran.
int finishObservability(const CliOptions& opts, int status) {
  if (!opts.tracePath.empty()) {
    obs::Tracer::global().stop();
    if (!obs::Tracer::global().writeTo(opts.tracePath)) {
      std::fprintf(stderr, "cannot write trace to %s\n", opts.tracePath.c_str());
      if (status == 0) status = 1;
    }
  }
  if (!opts.metricsPath.empty()) {
    std::ofstream out(opts.metricsPath);
    if (out) out << obs::Registry::global().json() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   opts.metricsPath.c_str());
      if (status == 0) status = 1;
    }
  }
  if (!opts.logJsonPath.empty()) obs::Log::global().close();
  return status;
}

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parseArgs(argc, argv, &opts)) return usage();
  if (!opts.metricsPath.empty()) obs::setEnabled(true);
  if (!opts.tracePath.empty()) obs::Tracer::global().start();
  if (!opts.logJsonPath.empty() &&
      !obs::Log::global().open(opts.logJsonPath, opts.slowMs * 1000.0)) {
    std::fprintf(stderr, "cannot open log file %s\n", opts.logJsonPath.c_str());
    return 1;
  }

  int status = 2;
  if (opts.command == "ir") status = runIr(opts);
  else if (opts.command == "serve") status = runServe(opts);
  else if (opts.command == "stats") status = runStats(opts);
  else if (opts.command == "cache") status = runCache(opts);
  else if (opts.command == "lint") {
    status = opts.storeDir.empty() ? runLint(opts) : runViaStore(opts);
  } else if (opts.command == "estimate" || opts.command == "explain" ||
             opts.command == "explore") {
    status = opts.storeDir.empty() ? runEstimateOrExplore(opts)
                                   : runViaStore(opts);
  } else {
    return usage();
  }
  return finishObservability(opts, status);
}
