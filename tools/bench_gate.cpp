// bench_gate: compares a google-benchmark JSON run against the committed
// BENCH_baseline.json and reports per-benchmark timing ratios.
//
//   bench_gate <run.json> [--baseline BENCH_baseline.json]
//              [--tolerance 1.0] [--metric real_time|cpu_time]
//
// A benchmark regresses when run/baseline - 1 exceeds the tolerance. Exit
// codes: 0 all within tolerance, 1 at least one regression, 2 usage or
// parse error. CI runs this as a non-blocking report step: the baseline was
// recorded on the single-core CI container, so absolute times move with
// host load and the gate's job is to surface large ratio shifts, not to
// fail the build (see DESIGN.md, bench baselines section).
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader: just enough for google-benchmark output and the
// baseline file. The repo otherwise only emits JSON, so this is the one
// place a parser lives; it rejects anything malformed rather than guessing.
// ---------------------------------------------------------------------------

struct Json {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0;
  std::string text;
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  [[nodiscard]] const Json* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& src) : src_(src) {}

  bool parse(Json& out) { return value(out) && (skipWs(), pos_ == src_.size()); }

  [[nodiscard]] std::string error() const {
    std::ostringstream os;
    os << "JSON parse error near offset " << pos_;
    return os.str();
  }

 private:
  void skipWs() {
    while (pos_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[pos_]))) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (src_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value(Json& out) {
    skipWs();
    if (pos_ >= src_.size()) return false;
    switch (src_[pos_]) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = Json::Kind::String; return string(out.text);
      case 't': out.kind = Json::Kind::Bool; out.boolean = true;
                return literal("true");
      case 'f': out.kind = Json::Kind::Bool; out.boolean = false;
                return literal("false");
      case 'n': out.kind = Json::Kind::Null; return literal("null");
      default: return number(out);
    }
  }

  bool object(Json& out) {
    out.kind = Json::Kind::Object;
    ++pos_;  // '{'
    skipWs();
    if (pos_ < src_.size() && src_[pos_] == '}') { ++pos_; return true; }
    while (true) {
      skipWs();
      std::string key;
      if (!string(key)) return false;
      skipWs();
      if (pos_ >= src_.size() || src_[pos_] != ':') return false;
      ++pos_;
      Json v;
      if (!value(v)) return false;
      out.fields.emplace_back(std::move(key), std::move(v));
      skipWs();
      if (pos_ >= src_.size()) return false;
      if (src_[pos_] == ',') { ++pos_; continue; }
      if (src_[pos_] == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(Json& out) {
    out.kind = Json::Kind::Array;
    ++pos_;  // '['
    skipWs();
    if (pos_ < src_.size() && src_[pos_] == ']') { ++pos_; return true; }
    while (true) {
      Json v;
      if (!value(v)) return false;
      out.items.push_back(std::move(v));
      skipWs();
      if (pos_ >= src_.size()) return false;
      if (src_[pos_] == ',') { ++pos_; continue; }
      if (src_[pos_] == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string& out) {
    if (pos_ >= src_.size() || src_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < src_.size()) {
      const char c = src_[pos_++];
      if (c == '"') return true;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= src_.size()) return false;
      const char esc = src_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {  // keep the raw escape; names never use \u anyway
          if (src_.size() - pos_ < 4) return false;
          out += "\\u" + src_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    while (pos_ < src_.size() &&
           (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
            std::strchr("+-.eE", src_[pos_]) != nullptr)) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = Json::Kind::Number;
    out.number = std::strtod(src_.substr(start, pos_ - start).c_str(), nullptr);
    return true;
  }

  const std::string& src_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Gate logic
// ---------------------------------------------------------------------------

struct Entry {
  double realTime = 0;
  double cpuTime = 0;
};

/// Collects {name -> times} from every benchmark array the file carries:
/// google-benchmark's "benchmarks" plus the baseline's named sections
/// ("model_micro", "serve_replay", "serve_latency", "staticprof",
/// "sim_throughput"). Sections
/// are merged — benchmark names are globally unique across the suite.
std::map<std::string, Entry> entriesOf(const Json& root) {
  std::map<std::string, Entry> out;
  for (const char* section :
       {"benchmarks", "model_micro", "serve_replay", "serve_latency",
        "staticprof", "sim_throughput"}) {
    const Json* arr = root.find(section);
    if (arr == nullptr || arr->kind != Json::Kind::Array) continue;
    for (const Json& b : arr->items) {
      const Json* name = b.find("name");
      const Json* real = b.find("real_time");
      const Json* cpu = b.find("cpu_time");
      if (name == nullptr || name->kind != Json::Kind::String) continue;
      Entry e;
      if (real != nullptr) e.realTime = real->number;
      if (cpu != nullptr) e.cpuTime = cpu->number;
      out[name->text] = e;
    }
  }
  return out;
}

bool loadJson(const std::string& path, Json& out, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Parser parser(text);
  if (!parser.parse(out)) {
    error = path + ": " + parser.error();
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_gate <run.json> [--baseline BENCH_baseline.json]"
               " [--tolerance 1.0] [--metric real_time|cpu_time]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string runPath;
  std::string baselinePath = "BENCH_baseline.json";
  double tolerance = 1.0;
  bool useCpuTime = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baselinePath = argv[++i];
    } else if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg == "--metric" && i + 1 < argc) {
      const std::string metric = argv[++i];
      if (metric != "real_time" && metric != "cpu_time") return usage();
      useCpuTime = metric == "cpu_time";
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (runPath.empty()) {
      runPath = arg;
    } else {
      return usage();
    }
  }
  if (runPath.empty()) return usage();

  Json run, baseline;
  std::string error;
  if (!loadJson(runPath, run, error) ||
      !loadJson(baselinePath, baseline, error)) {
    std::fprintf(stderr, "bench_gate: %s\n", error.c_str());
    return 2;
  }
  const auto runEntries = entriesOf(run);
  const auto baseEntries = entriesOf(baseline);
  if (runEntries.empty() || baseEntries.empty()) {
    std::fprintf(stderr, "bench_gate: no benchmark entries found (%s: %zu, %s: %zu)\n",
                 runPath.c_str(), runEntries.size(), baselinePath.c_str(),
                 baseEntries.size());
    return 2;
  }

  std::printf("%-28s %14s %14s %8s\n", "benchmark",
              useCpuTime ? "cpu_run_ns" : "real_run_ns", "baseline_ns", "ratio");
  int regressions = 0;
  int compared = 0;
  for (const auto& [name, base] : baseEntries) {
    const auto it = runEntries.find(name);
    if (it == runEntries.end()) {
      std::printf("%-28s missing from run\n", name.c_str());
      continue;
    }
    const double baseNs = useCpuTime ? base.cpuTime : base.realTime;
    const double runNs = useCpuTime ? it->second.cpuTime : it->second.realTime;
    if (baseNs <= 0) continue;
    const double ratio = runNs / baseNs;
    ++compared;
    const bool regressed = ratio > 1.0 + tolerance;
    if (regressed) ++regressions;
    std::printf("%-28s %14.0f %14.0f %7.2fx%s\n", name.c_str(), runNs, baseNs,
                ratio, regressed ? "  REGRESSED" : "");
  }
  std::printf("%d/%d benchmarks within %.0f%% of baseline\n",
              compared - regressions, compared, tolerance * 100.0);
  return regressions > 0 ? 1 : 0;
}
