// Reproduces §4.2's PolyBench accuracy result: "the average absolute
// performance estimation error of FlexCL is 8.7%" over the suite's design
// spaces, compared against the System-Run substitute.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main() {
  std::printf("PolyBench accuracy (paper §4.2: FlexCL avg abs error 8.7%%)\n\n");

  model::FlexCl flexcl(model::Device::virtex7());
  bench::printTable2Header();

  std::vector<bench::KernelRun> runs;
  for (const workloads::Workload& w : workloads::polybenchSuite()) {
    bench::KernelRun run = bench::exploreWorkload(w, flexcl);
    bench::printTable2Row(run);
    std::fflush(stdout);
    runs.push_back(std::move(run));
  }

  bench::printSummary("PolyBench summary (paper §4.2)", bench::summarize(runs));
  return 0;
}
