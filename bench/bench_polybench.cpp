// Reproduces §4.2's PolyBench accuracy result: "the average absolute
// performance estimation error of FlexCL is 8.7%" over the suite's design
// spaces, compared against the System-Run substitute.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  if (!obsOpts.parse(&argc, argv)) return 2;
  obsOpts.begin();

  std::printf("PolyBench accuracy (paper §4.2: FlexCL avg abs error 8.7%%)\n\n");

  model::FlexCl flexcl(model::Device::virtex7());
  bench::printTable2Header();

  std::vector<bench::KernelRun> runs;
  runtime::Stats stats;
  for (const workloads::Workload& w : workloads::polybenchSuite()) {
    bench::KernelRun run = bench::exploreWorkload(w, flexcl);
    bench::printTable2Row(run);
    std::fflush(stdout);
    stats += run.runtimeStats;
    runs.push_back(std::move(run));
  }

  bench::printSummary("PolyBench summary (paper §4.2)", bench::summarize(runs));
  return obsOpts.finish(&stats) ? 0 : 1;
}
