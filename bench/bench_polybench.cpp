// Reproduces §4.2's PolyBench accuracy result: "the average absolute
// performance estimation error of FlexCL is 8.7%" over the suite's design
// spaces, compared against the System-Run substitute.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  int jobs = 1;  // default stays serial so paper timings remain comparable
  if (!obsOpts.parse(&argc, argv) ||
      !bench::parseJobsFlag(&argc, argv, &jobs)) {
    return 2;
  }
  obsOpts.begin();

  std::printf("PolyBench accuracy (paper §4.2: FlexCL avg abs error 8.7%%)\n\n");

  model::FlexCl flexcl(model::Device::virtex7());
  bench::printTable2Header();

  // `--jobs N` shards per kernel; rows and summary are identical to the
  // serial run (see exploreSuite), only wall times change.
  bench::RunOptions runOpts;
  runOpts.jobs = jobs;
  const std::vector<bench::KernelRun> runs = bench::exploreSuite(
      workloads::polybenchSuite(), flexcl, {}, runOpts,
      [](const bench::KernelRun& run) {
        bench::printTable2Row(run);
        std::fflush(stdout);
      });
  runtime::Stats stats;
  for (const bench::KernelRun& run : runs) stats += run.runtimeStats;

  bench::printSummary("PolyBench summary (paper §4.2)", bench::summarize(runs));
  return obsOpts.finish(&stats) ? 0 : 1;
}
