// Reproduces Table 2: performance-estimation results for all 45 Rodinia
// kernels. For every kernel the full design space (work-group size, pipeline,
// PE/CU parallelism, communication mode) is evaluated with the three
// techniques of §4.1:
//   System Run — the cycle-level simulator standing in for the synthesised
//                bitstream (ground truth; see DESIGN.md §1),
//   SDAccel    — the biased HLS-style estimator (errors + failures),
//   FlexCL     — the analytical model.
// Expected shape: FlexCL ~10% error everywhere; SDAccel 30-85% with ~42%
// failures; FlexCL exploration orders of magnitude faster than System Run.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  int jobs = 1;  // default stays serial so paper timings remain comparable
  if (!obsOpts.parse(&argc, argv) ||
      !bench::parseJobsFlag(&argc, argv, &jobs)) {
    return 2;
  }
  obsOpts.begin();

  std::printf("Table 2: Performance Estimation Results of Rodinia\n");
  std::printf("(System Run = cycle-level simulator; errors vs System Run)\n\n");

  model::FlexCl flexcl(model::Device::virtex7());
  bench::printTable2Header();

  // `--jobs N` shards per kernel; rows and summary are identical to the
  // serial run (see exploreSuite), only wall times change.
  bench::RunOptions runOpts;
  runOpts.jobs = jobs;
  const std::vector<bench::KernelRun> runs = bench::exploreSuite(
      workloads::rodiniaSuite(), flexcl, {}, runOpts,
      [](const bench::KernelRun& run) {
        bench::printTable2Row(run);
        std::fflush(stdout);
      });
  runtime::Stats stats;
  for (const bench::KernelRun& run : runs) stats += run.runtimeStats;

  bench::printSummary("Rodinia summary (paper §4.2)", bench::summarize(runs));
  return obsOpts.finish(&stats) ? 0 : 1;
}
