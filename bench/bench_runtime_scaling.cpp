// Parallel evaluation runtime: thread scaling and cache effectiveness.
//
// Runs one Rodinia kernel's exhaustive design-space exploration at 1/2/4/8
// evaluation jobs and reports, as JSON on stdout:
//  - wall-clock seconds and speedup vs the 1-job run (cold caches each run,
//    fresh FlexCl instance, so nothing carries over between thread counts),
//  - whether every thread count picked the identical best design (it must:
//    results land by index, so the exploration is deterministic),
//  - a warm re-run against a shared EvalCache, whose hit rates demonstrate
//    the (kernel, design) memoization,
//  - the host's hardware concurrency, because the speedup ceiling is
//    min(jobs, cores): on a single-core container every speedup is ~1.0 and
//    only the determinism and cache columns are meaningful.
//
// Usage: bench_runtime_scaling [benchmark kernel]   (default: nn nn)
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "runtime/eval_cache.h"

using namespace flexcl;

namespace {

struct ScalingRun {
  int jobs = 0;
  double seconds = 0;
  double speedup = 0;
  std::string bestDesign;
  runtime::Stats stats;
};

std::string jsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  if (!obsOpts.parse(&argc, argv)) return 2;
  obsOpts.begin();

  const std::string benchmark = argc > 2 ? argv[1] : "nn";
  const std::string kernel = argc > 2 ? argv[2] : "nn";
  const workloads::Workload* w =
      workloads::findWorkload("rodinia", benchmark, kernel);
  if (!w) {
    std::fprintf(stderr, "unknown rodinia workload %s/%s\n", benchmark.c_str(),
                 kernel.c_str());
    return 1;
  }

  const int threadCounts[] = {1, 2, 4, 8};
  std::vector<ScalingRun> runs;
  std::size_t designs = 0;
  bool identicalBest = true;

  for (int jobs : threadCounts) {
    // Fresh model instance per thread count: the profile and sim-input
    // caches start cold, so each run pays the full evaluation cost.
    model::FlexCl flexcl(model::Device::virtex7());
    bench::RunOptions runOptions;
    runOptions.jobs = jobs;
    bench::KernelRun run = bench::exploreWorkload(*w, flexcl, {}, runOptions);
    if (!run.ok) {
      std::fprintf(stderr, "exploration failed: %s\n", run.error.c_str());
      return 1;
    }
    ScalingRun sr;
    sr.jobs = jobs;
    sr.seconds = run.result.flexclSeconds + run.result.simSeconds;
    sr.stats = run.runtimeStats;
    designs = run.designs;
    if (run.result.bestByFlexcl >= 0) {
      sr.bestDesign =
          run.result.designs[static_cast<std::size_t>(run.result.bestByFlexcl)]
              .design.str();
    }
    if (!runs.empty()) {
      sr.speedup = sr.seconds > 0 ? runs.front().seconds / sr.seconds : 0;
      if (sr.bestDesign != runs.front().bestDesign) identicalBest = false;
    } else {
      sr.speedup = 1.0;
    }
    runs.push_back(sr);
  }

  // Warm re-run: a shared EvalCache is populated by one sweep, then the
  // re-exploration of the identical space is pure hits.
  runtime::EvalCache evalCache;
  runtime::Stats warmStats;
  double warmSeconds = 0;
  {
    model::FlexCl flexcl(model::Device::virtex7());
    bench::RunOptions runOptions;
    runOptions.jobs = 4;
    runOptions.evalCache = &evalCache;
    bench::KernelRun first = bench::exploreWorkload(*w, flexcl, {}, runOptions);
    bench::KernelRun second = bench::exploreWorkload(*w, flexcl, {}, runOptions);
    if (!first.ok || !second.ok) {
      std::fprintf(stderr, "warm re-run failed\n");
      return 1;
    }
    warmSeconds = second.result.flexclSeconds + second.result.simSeconds;
    warmStats = second.runtimeStats;
  }

  std::printf("{\n");
  std::printf("  \"kernel\": \"%s\",\n", jsonEscape(w->fullName()).c_str());
  std::printf("  \"designs\": %zu,\n", designs);
  std::printf("  \"hardware_concurrency\": %u,\n",
              std::thread::hardware_concurrency());
  std::printf("  \"identical_best_design\": %s,\n",
              identicalBest ? "true" : "false");
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ScalingRun& sr = runs[i];
    std::printf(
        "    {\"jobs\": %d, \"seconds\": %.3f, \"speedup\": %.2f, "
        "\"best_design\": \"%s\", \"stats\": %s}%s\n",
        sr.jobs, sr.seconds, sr.speedup, jsonEscape(sr.bestDesign).c_str(),
        sr.stats.json().c_str(), i + 1 < runs.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"warm_rerun\": {\"jobs\": 4, \"seconds\": %.3f, \"stats\": %s}\n",
              warmSeconds, warmStats.json().c_str());
  std::printf("}\n");
  if (!obsOpts.finish(&warmStats)) return 1;
  return identicalBest ? 0 : 1;
}
