// Micro-benchmarks of the model's building blocks (google-benchmark): how
// fast a single design-point evaluation is, and where the time goes. This
// substantiates the paper's "rapid exploration ... within seconds" claim at
// the component level.
#include <benchmark/benchmark.h>

#include "cdfg/cdfg.h"
#include "dse/design_space.h"
#include "ir/lower.h"
#include "model/flexcl.h"
#include "sched/sms.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

namespace {

using namespace flexcl;

struct Shared {
  std::shared_ptr<workloads::CompiledWorkload> workload;
  std::unique_ptr<model::FlexCl> flexcl;
  interp::KernelProfile profile;
  cdfg::KernelAnalysis analysis;
  sim::SimInput simInput;

  Shared() {
    const workloads::Workload* w = workloads::findWorkload("rodinia", "hotspot",
                                                           "hotspot");
    auto compiled = workloads::compileWorkload(*w);
    workload = std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));
    flexcl = std::make_unique<model::FlexCl>(model::Device::virtex7());
    model::DesignPoint dp;
    profile = flexcl->profileFor(workload->launch(), dp);
    analysis = flexcl->analysisFor(workload->launch(), dp);
    simInput = sim::prepareSimInput(
        *workload->fn, model::FlexCl::rangeFor(workload->launch(), dp),
        workload->args, workload->buffers);
  }
};

Shared& shared() {
  static Shared s;
  return s;
}

void BM_CompileKernel(benchmark::State& state) {
  const workloads::Workload* w =
      workloads::findWorkload("rodinia", "hotspot", "hotspot");
  for (auto _ : state) {
    DiagnosticEngine diags;
    auto compiled = ir::compileOpenCl(w->source, diags, w->defines);
    benchmark::DoNotOptimize(compiled);
  }
}
BENCHMARK(BM_CompileKernel);

void BM_KernelAnalysis(benchmark::State& state) {
  Shared& s = shared();
  for (auto _ : state) {
    auto analysis = cdfg::analyzeKernel(
        *s.workload->fn, model::OpLatencyDb::virtex7(), sched::ResourceBudget{},
        &s.profile);
    benchmark::DoNotOptimize(analysis);
  }
}
BENCHMARK(BM_KernelAnalysis);

void BM_SwingModuloSchedule(benchmark::State& state) {
  Shared& s = shared();
  for (auto _ : state) {
    auto result =
        sched::swingModuloSchedule(s.analysis.pipeline, sched::ResourceBudget{});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SwingModuloSchedule);

void BM_DramCalibration(benchmark::State& state) {
  for (auto _ : state) {
    auto table = dram::calibratePatternLatencies(dram::DramConfig{});
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_DramCalibration);

void BM_FlexClEstimate(benchmark::State& state) {
  Shared& s = shared();
  model::DesignPoint dp;
  dp.peParallelism = 2;
  dp.numComputeUnits = 2;
  for (auto _ : state) {
    auto est = s.flexcl->estimate(s.workload->launch(), dp);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_FlexClEstimate);

void BM_SystemSimulation(benchmark::State& state) {
  Shared& s = shared();
  model::DesignPoint dp;
  dp.peParallelism = 2;
  dp.numComputeUnits = 2;
  for (auto _ : state) {
    auto result = sim::simulate(s.simInput, s.flexcl->device(), dp);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SystemSimulation);

void BM_DesignSpaceEnumeration(benchmark::State& state) {
  interp::NdRange range;
  range.global = {1024, 1, 1};
  for (auto _ : state) {
    auto space = dse::enumerateDesignSpace(range, false);
    benchmark::DoNotOptimize(space);
  }
}
BENCHMARK(BM_DesignSpaceEnumeration);

}  // namespace

BENCHMARK_MAIN();
