// Reproduces §4.3's design-space exploration results:
//  - exploration speed: FlexCL vs the System-Run substitute (paper: >10,000x
//    vs real synthesis; our substitute is itself much faster than synthesis,
//    so the measured ratio is the fair comparison here),
//  - solution quality: the configuration FlexCL picks lands within a small
//    gap of the true optimum (paper: 2.1%),
//  - speedup of the best configuration over the unoptimised baseline
//    (paper: 273x on average).
// A representative cross-section of Rodinia + PolyBench kernels is used.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main() {
  std::printf("Design-space exploration quality and speed (paper §4.3)\n\n");

  const std::pair<const char*, std::pair<const char*, const char*>> picks[] = {
      {"rodinia", {"backprop", "layer"}},   {"rodinia", {"hotspot", "hotspot"}},
      {"rodinia", {"kmeans", "center"}},    {"rodinia", {"nn", "nn"}},
      {"rodinia", {"pathfinder", "dynproc"}}, {"rodinia", {"srad", "srad"}},
      {"rodinia", {"lavaMD", "lavaMD"}},    {"polybench", {"gemm", "gemm"}},
      {"polybench", {"atax", "atax"}},      {"polybench", {"syrk", "syrk"}},
      {"polybench", {"conv2d", "conv2d"}},  {"polybench", {"mvt", "mvt"}},
  };

  model::FlexCl flexcl(model::Device::virtex7());

  std::printf("| %-22s | %8s | %10s | %9s | %12s | %10s | %9s |\n", "kernel",
              "#designs", "pick gap%%", "speedup", "SystemRun(s)", "FlexCL(s)",
              "ratio");
  std::printf(
      "|------------------------|----------|------------|-----------|"
      "--------------|------------|-----------|\n");

  std::vector<bench::KernelRun> runs;
  for (const auto& [suite, bk] : picks) {
    const workloads::Workload* w = workloads::findWorkload(suite, bk.first,
                                                           bk.second);
    if (!w) continue;
    bench::KernelRun run = bench::exploreWorkload(*w, flexcl);
    if (!run.ok) {
      std::printf("| %-22s | FAILED: %s\n", w->fullName().c_str(),
                  run.error.c_str());
      continue;
    }
    const double ratio = run.result.flexclSeconds > 0
                             ? run.result.simSeconds / run.result.flexclSeconds
                             : 0;
    std::printf("| %-22s | %8zu | %10.2f | %8.0fx | %12.2f | %10.3f | %8.0fx |\n",
                w->fullName().c_str(), run.designs, run.result.pickGapPct,
                run.result.speedupVsBaseline, run.result.simSeconds,
                run.result.flexclSeconds, ratio);
    std::fflush(stdout);
    runs.push_back(std::move(run));
  }

  const bench::SuiteSummary s = bench::summarize(runs);
  std::printf("\nAverages: pick gap %.2f%% (paper: 2.1%%), speedup vs baseline "
              "%.0fx (paper: 273x)\n",
              s.avgPickGapPct, s.avgSpeedup);
  std::printf("FlexCL evaluates the space %.0fx faster than the cycle-level "
              "System-Run substitute\n(the paper reports >10,000x against real "
              "hour-scale synthesis runs).\n",
              s.totalFlexclSeconds > 0 ? s.totalSimSeconds / s.totalFlexclSeconds
                                       : 0);
  return 0;
}
