// Ablation study over the model's design choices (DESIGN.md §4):
//  1. eight-pattern ΔT table    vs one average access latency,
//  2. SMS-refined II            vs stopping at the MII lower bound,
//  3. work-group dispatch model vs assuming free dispatch (eq. 8 off),
//  4. coalescing model          vs pricing every raw access,
//  5. interference-aware        vs sequential pattern classification.
// Each variant re-runs a cross-section of kernels against the same System-Run
// ground truth; the delta in average absolute error quantifies the feature.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

namespace {

struct AblationScore {
  double avgErrPct = 0;
  double avgPickGapPct = 0;
};

AblationScore scoreWith(const model::ModelOptions& options,
                        const std::vector<const workloads::Workload*>& picks) {
  model::FlexCl flexcl(model::Device::virtex7(), options);
  AblationScore s;
  int n = 0;
  for (const workloads::Workload* w : picks) {
    bench::KernelRun run = bench::exploreWorkload(*w, flexcl);
    if (!run.ok) continue;
    s.avgErrPct += run.result.avgFlexclErrorPct;
    s.avgPickGapPct += run.result.pickGapPct;
    ++n;
  }
  if (n > 0) {
    s.avgErrPct /= n;
    s.avgPickGapPct /= n;
  }
  return s;
}

}  // namespace

int main() {
  std::printf("Ablation: contribution of each model component\n");
  std::printf("(avg abs error over a kernel cross-section; higher = worse)\n\n");

  std::vector<const workloads::Workload*> picks;
  for (const auto& [suite, name] :
       std::vector<std::pair<const char*, std::pair<const char*, const char*>>>{
           {"rodinia", {"backprop", "layer"}},
           {"rodinia", {"hotspot", "hotspot"}},
           {"rodinia", {"kmeans", "swap"}},
           {"rodinia", {"srad", "srad"}},
           {"rodinia", {"nn", "nn"}},
           {"polybench", {"gemm", "gemm"}},
           {"polybench", {"atax", "atax"}},
           {"polybench", {"conv2d", "conv2d"}}}) {
    if (const workloads::Workload* w =
            workloads::findWorkload(suite, name.first, name.second)) {
      picks.push_back(w);
    }
  }

  struct Variant {
    const char* name;
    model::ModelOptions options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full model (all components on)", model::ModelOptions{}});
  {
    model::ModelOptions o;
    o.eightPatterns = false;
    variants.push_back({"- eight-pattern table (single avg latency)", o});
  }
  {
    model::ModelOptions o;
    o.smsRefinement = false;
    variants.push_back({"- SMS refinement (II = MII bound)", o});
  }
  {
    model::ModelOptions o;
    o.dispatchOverhead = false;
    variants.push_back({"- dispatch overhead (free work-group scheduling)", o});
  }
  {
    model::ModelOptions o;
    o.coalescing = false;
    variants.push_back({"- coalescing (price every raw access)", o});
  }
  {
    model::ModelOptions o;
    o.interferenceAwareClassification = false;
    variants.push_back({"- interference-aware classification (sequential)", o});
  }

  std::printf("| %-50s | %12s | %12s |\n", "variant", "avg err %%",
              "pick gap %%");
  std::printf("|%s|--------------|--------------|\n", std::string(52, '-').c_str());
  double fullError = -1;
  for (const Variant& v : variants) {
    const AblationScore score = scoreWith(v.options, picks);
    if (fullError < 0) fullError = score.avgErrPct;
    std::printf("| %-50s | %12.1f | %12.2f |\n", v.name, score.avgErrPct,
                score.avgPickGapPct);
    std::fflush(stdout);
  }
  std::printf(
      "\nEvery removed component should raise the error above the full "
      "model's %.1f%%,\nmirroring the paper's argument for modelling patterns, "
      "pipeline and scheduling\noverhead explicitly (§2.2, §4.2).\n",
      fullError);
  return 0;
}
