// Reproduces Figure 4: estimated (FlexCL) versus actual (System Run)
// performance for every design solution of hotspot3D and nn. The paper's
// takeaway — low error not just on average but per design point — is checked
// by printing the per-design series plus the error distribution.
#include <cstdio>

#include <algorithm>
#include <numeric>

#include "harness.h"

using namespace flexcl;

namespace {

void scatterFor(const char* benchmark, const char* kernel,
                model::FlexCl& flexcl) {
  const workloads::Workload* w = workloads::findWorkload("rodinia", benchmark,
                                                         kernel);
  if (!w) {
    std::printf("workload %s/%s missing\n", benchmark, kernel);
    return;
  }
  bench::KernelRun run = bench::exploreWorkload(*w, flexcl);
  if (!run.ok) {
    std::printf("%s failed: %s\n", w->fullName().c_str(), run.error.c_str());
    return;
  }

  std::printf("\nFigure 4 series: %s (%zu design points)\n",
              w->fullName().c_str(), run.designs);
  std::printf("| %4s | %-44s | %12s | %12s | %7s |\n", "id", "configuration",
              "actual (cyc)", "FlexCL (cyc)", "err %%");
  std::printf("|------|%s|--------------|--------------|---------|\n",
              std::string(46, '-').c_str());

  // Sort by actual performance so the plot reads like the paper's figure.
  std::vector<const dse::EvaluatedDesign*> ordered;
  for (const auto& d : run.result.designs) ordered.push_back(&d);
  std::sort(ordered.begin(), ordered.end(),
            [](const auto* a, const auto* b) { return a->simCycles < b->simCycles; });

  std::vector<double> errors;
  int id = 0;
  for (const auto* d : ordered) {
    const double err = d->flexclErrorPct();
    errors.push_back(err);
    std::printf("| %4d | %-44s | %12.0f | %12.0f | %7.1f |\n", id++,
                d->design.str().c_str(), d->simCycles, d->flexclCycles, err);
  }

  std::sort(errors.begin(), errors.end());
  const double avg =
      std::accumulate(errors.begin(), errors.end(), 0.0) / errors.size();
  std::printf(
      "error distribution: avg %.1f%%  p50 %.1f%%  p90 %.1f%%  max %.1f%%\n",
      avg, errors[errors.size() / 2], errors[errors.size() * 9 / 10],
      errors.back());
}

}  // namespace

int main() {
  std::printf("Figure 4: FlexCL estimate vs actual per design point\n");
  model::FlexCl flexcl(model::Device::virtex7());
  scatterFor("hotspot3D", "hotspot3D", flexcl);
  scatterFor("nn", "nn", flexcl);
  return 0;
}
