// Cold full-suite simulator throughput (DESIGN.md §16).
//
// Compiles all 60 Rodinia + PolyBench kernels up front, then:
//   1. one timed prepare pass — prepareSimInput for every workload through a
//      single shared SimScratch (the streaming-coalescer path the Explorer
//      uses),
//   2. one timed cold sim sweep per engine — simulate() of every workload at
//      the default design point with EngineKind::Fast and then
//      EngineKind::Reference.
// Compilation is excluded from all timings. Reports, as JSON on stdout:
//   - a google-benchmark-shaped "sim_throughput" section
//     (BM_SimPrepareInputs / BM_SimSweepFastEngine /
//      BM_SimSweepReferenceEngine wall-clock ns) consumable by bench_gate,
//   - per-workload simulated cycles and fast-engine cycles/second,
//   - the fast engine's skip-ahead counters and the sweep speedup.
// Exit code 1 when an invariant breaks: any SimResult field differing
// between the two engines (the fast engine must change *how fast*, never
// *what*) — wall-clock speedup is reported but not gated here (CI noise);
// bench_gate gates the sweep latencies.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "harness.h"
#include "model/design_point.h"
#include "model/device.h"
#include "obs/registry.h"
#include "sim/system_sim.h"
#include "workloads/workload.h"

using namespace flexcl;

namespace {

/// The local size the suite sweeps use (mirrors tests/test_simengine.cpp).
interp::NdRange workloadRange(const workloads::Workload& w) {
  interp::NdRange range = w.range;
  range.local = {std::min<std::uint64_t>(32, range.global[0]), 1, 1};
  while (range.global[0] % range.local[0] != 0) --range.local[0];
  if (range.global[1] > 1) {
    range.local = {8, 4, 1};
    while (range.global[0] % range.local[0] != 0) range.local[0] /= 2;
    while (range.global[1] % range.local[1] != 0) range.local[1] /= 2;
  }
  return range;
}

struct SweepRun {
  std::vector<sim::SimResult> results;
  std::vector<double> perWorkloadSeconds;
  double seconds = 0;
  double cpuSeconds = 0;
};

SweepRun sweep(const std::vector<sim::SimInput>& inputs,
               sim::EngineKind engine) {
  const model::Device device = model::Device::virtex7();
  const model::DesignPoint design;
  sim::SimOptions options;
  options.engine = engine;
  SweepRun run;
  run.results.reserve(inputs.size());
  run.perWorkloadSeconds.reserve(inputs.size());
  const auto wallStart = std::chrono::steady_clock::now();
  const std::clock_t cpuStart = std::clock();
  for (const sim::SimInput& input : inputs) {
    const auto start = std::chrono::steady_clock::now();
    run.results.push_back(sim::simulate(input, device, design, options));
    run.perWorkloadSeconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  run.cpuSeconds =
      static_cast<double>(std::clock() - cpuStart) / CLOCKS_PER_SEC;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count();
  return run;
}

void printBenchEntry(const char* name, double seconds, double cpuSeconds,
                     bool last) {
  std::printf("    {\"name\": \"%s\", \"iterations\": 1, "
              "\"real_time\": %.0f, \"cpu_time\": %.0f, "
              "\"time_unit\": \"ns\"}%s\n",
              name, seconds * 1e9, cpuSeconds * 1e9, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  if (!obsOpts.parse(&argc, argv)) return 2;
  obsOpts.begin();

  std::vector<workloads::CompiledWorkload> compiled;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      std::string error;
      auto cw = workloads::compileWorkload(w, &error);
      if (!cw) {
        std::fprintf(stderr, "compile failed: %s: %s\n", w.fullName().c_str(),
                     error.c_str());
        return 1;
      }
      compiled.push_back(std::move(*cw));
    }
  }

  // Timed prepare pass: every workload streams its trace through one shared
  // scratch (images and coalescer arenas get reused across workloads exactly
  // as in the Explorer's pool).
  std::vector<sim::SimInput> inputs;
  inputs.reserve(compiled.size());
  sim::SimScratch scratch;
  const auto prepWallStart = std::chrono::steady_clock::now();
  const std::clock_t prepCpuStart = std::clock();
  for (const workloads::CompiledWorkload& cw : compiled) {
    inputs.push_back(sim::prepareSimInput(*cw.fn, workloadRange(cw.meta),
                                          cw.args, cw.buffers, {}, scratch));
    if (!inputs.back().ok) {
      std::fprintf(stderr, "prepare failed: %s: %s\n",
                   cw.meta.fullName().c_str(), inputs.back().error.c_str());
      return 1;
    }
  }
  const double prepCpuSeconds =
      static_cast<double>(std::clock() - prepCpuStart) / CLOCKS_PER_SEC;
  const double prepSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    prepWallStart)
          .count();

  // Fast sweep first, with counters on, to collect the skip-ahead stats the
  // README's perf claim cites; the reference sweep follows counter-free.
  const bool wasEnabled = obs::enabled();
  obs::setEnabled(true);
  const std::uint64_t events0 = obs::counter("sim.events").value();
  const std::uint64_t chain0 = obs::counter("sim.skip_ahead.chain").value();
  const std::uint64_t issue0 = obs::counter("sim.skip_ahead.issue").value();
  const SweepRun fast = sweep(inputs, sim::EngineKind::Fast);
  const std::uint64_t events = obs::counter("sim.events").value() - events0;
  const std::uint64_t skipChain =
      obs::counter("sim.skip_ahead.chain").value() - chain0;
  const std::uint64_t skipIssue =
      obs::counter("sim.skip_ahead.issue").value() - issue0;
  obs::setEnabled(wasEnabled);
  const SweepRun reference = sweep(inputs, sim::EngineKind::Reference);

  // The two engines process the identical pinned event order — every result
  // field must agree bit for bit (the suite-wide gate, mirrored from
  // tests/test_simengine.cpp).
  bool identical = true;
  std::string firstDivergence;
  for (std::size_t i = 0; identical && i < fast.results.size(); ++i) {
    const sim::SimResult& a = fast.results[i];
    const sim::SimResult& b = reference.results[i];
    if (a.ok != b.ok || a.cycles != b.cycles ||
        a.milliseconds != b.milliseconds || a.iiHw != b.iiHw ||
        a.depthHw != b.depthHw || a.effectivePes != b.effectivePes ||
        a.effectiveCus != b.effectiveCus || a.dramAccesses != b.dramAccesses ||
        a.dramRowHits != b.dramRowHits || a.workGroups != b.workGroups ||
        a.dramRefreshStallCycles != b.dramRefreshStallCycles ||
        a.dramBankWaitCycles != b.dramBankWaitCycles ||
        a.dramBusWaitCycles != b.dramBusWaitCycles ||
        a.memStallCycles != b.memStallCycles ||
        a.dispatchStallCycles != b.dispatchStallCycles) {
      identical = false;
      firstDivergence = compiled[i].meta.fullName();
    }
  }

  std::printf("{\n");
  std::printf("  \"schema\": \"flexcl-sim-throughput-v1\",\n");
  std::printf("  \"sim_throughput\": [\n");
  printBenchEntry("BM_SimPrepareInputs", prepSeconds, prepCpuSeconds, false);
  printBenchEntry("BM_SimSweepFastEngine", fast.seconds, fast.cpuSeconds,
                  false);
  printBenchEntry("BM_SimSweepReferenceEngine", reference.seconds,
                  reference.cpuSeconds, true);
  std::printf("  ],\n");
  std::printf("  \"workloads\": [\n");
  for (std::size_t i = 0; i < compiled.size(); ++i) {
    const double cycles = fast.results[i].cycles;
    const double secs = fast.perWorkloadSeconds[i];
    std::printf("    {\"name\": \"%s\", \"cycles\": %.0f, "
                "\"cycles_per_sec\": %.0f}%s\n",
                compiled[i].meta.fullName().c_str(), cycles,
                secs > 0 ? cycles / secs : 0.0,
                i + 1 < compiled.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"sweep\": {\n");
  std::printf("    \"workloads\": %zu,\n", compiled.size());
  std::printf("    \"results_identical\": %s,\n", identical ? "true" : "false");
  std::printf("    \"events\": %llu,\n",
              static_cast<unsigned long long>(events));
  std::printf("    \"skip_ahead_chain\": %llu,\n",
              static_cast<unsigned long long>(skipChain));
  std::printf("    \"skip_ahead_issue\": %llu,\n",
              static_cast<unsigned long long>(skipIssue));
  std::printf("    \"speedup\": %.2f\n",
              fast.seconds > 0 ? reference.seconds / fast.seconds : 0.0);
  std::printf("  }\n");
  std::printf("}\n");

  if (!obsOpts.finish()) return 1;
  if (!identical) {
    std::fprintf(stderr, "FAIL: engines diverge (first: %s)\n",
                 firstDivergence.c_str());
    return 1;
  }
  return 0;
}
