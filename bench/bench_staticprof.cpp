// Static-profile-tier cold-estimate latency (DESIGN.md §13).
//
// Runs one cold estimate per suite workload (all 60 Rodinia + PolyBench
// kernels, default design point) through two fresh FlexCl instances:
//   1. static tier enabled: Exact kernels take the synthesized profile,
//      the rest fall back to the profiling interpreter,
//   2. static tier disabled: every kernel pays the interpreter.
// Compilation is done up front and excluded from both timings, so the
// numbers isolate analysis + profile + model evaluation.
// Reports, as JSON on stdout:
//   - a google-benchmark-shaped "staticprof" section
//     (BM_ColdEstimateStaticTier / BM_ColdEstimateInterpreterTier wall-clock
//     ns over the whole sweep) consumable by bench_gate,
//   - the verdict census (exact / approximate / unsupported) and the
//     resulting cold-sweep speedup.
// Exit code 1 when an invariant breaks: any estimate differing between the
// two tiers (the static tier must change *how fast*, never *what*), or
// fewer than 40/60 kernels reaching an Exact verdict — wall-clock speedup
// is reported but not gated here (CI noise); bench_gate gates the latency.
#include <chrono>
#include <cstdio>
#include <ctime>
#include <string>
#include <vector>

#include "harness.h"
#include "model/design_point.h"
#include "model/flexcl.h"
#include "workloads/workload.h"

using namespace flexcl;

namespace {

struct SweepRun {
  std::vector<model::Estimate> estimates;
  double seconds = 0;
  double cpuSeconds = 0;
};

SweepRun sweep(const std::vector<workloads::CompiledWorkload>& compiled,
               bool staticTier, const model::DesignPoint& design) {
  model::ModelOptions options;
  options.staticProfiles = staticTier;
  model::FlexCl flexcl(model::Device::virtex7(), options);
  SweepRun run;
  run.estimates.reserve(compiled.size());
  const auto wallStart = std::chrono::steady_clock::now();
  const std::clock_t cpuStart = std::clock();
  for (const workloads::CompiledWorkload& cw : compiled) {
    run.estimates.push_back(flexcl.estimate(cw.launch(), design));
  }
  run.cpuSeconds =
      static_cast<double>(std::clock() - cpuStart) / CLOCKS_PER_SEC;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count();
  return run;
}

void printBenchEntry(const char* name, const SweepRun& run, bool last) {
  std::printf("    {\"name\": \"%s\", \"iterations\": 1, "
              "\"real_time\": %.0f, \"cpu_time\": %.0f, "
              "\"time_unit\": \"ns\"}%s\n",
              name, run.seconds * 1e9, run.cpuSeconds * 1e9, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  if (!obsOpts.parse(&argc, argv)) return 2;
  obsOpts.begin();

  std::vector<workloads::CompiledWorkload> compiled;
  for (const auto* suite :
       {&workloads::rodiniaSuite(), &workloads::polybenchSuite()}) {
    for (const workloads::Workload& w : *suite) {
      std::string error;
      auto cw = workloads::compileWorkload(w, &error);
      if (!cw) {
        std::fprintf(stderr, "compile failed: %s: %s\n", w.fullName().c_str(),
                     error.c_str());
        return 1;
      }
      compiled.push_back(std::move(*cw));
    }
  }

  const model::DesignPoint design;  // default: wg 64x1x1
  const SweepRun withTier = sweep(compiled, /*staticTier=*/true, design);
  const SweepRun withoutTier = sweep(compiled, /*staticTier=*/false, design);

  // Verdict census over a fresh tier-on instance (synthesis only, no
  // interpreter): what the latency difference is attributable to.
  std::size_t exact = 0, approximate = 0, unsupported = 0;
  {
    model::ModelOptions options;
    model::FlexCl flexcl(model::Device::virtex7(), options);
    for (const workloads::CompiledWorkload& cw : compiled) {
      const auto verdict = flexcl.staticVerdict(cw.launch(), design);
      switch (verdict.kind) {
        case analysis::staticprof::VerdictKind::Exact: ++exact; break;
        case analysis::staticprof::VerdictKind::Approximate:
          ++approximate;
          break;
        case analysis::staticprof::VerdictKind::Unsupported:
          ++unsupported;
          break;
      }
    }
  }

  bool identical = withTier.estimates.size() == withoutTier.estimates.size();
  std::string firstDivergence;
  for (std::size_t i = 0; identical && i < withTier.estimates.size(); ++i) {
    const model::Estimate& a = withTier.estimates[i];
    const model::Estimate& b = withoutTier.estimates[i];
    if (a.ok != b.ok || (a.ok && (a.cycles != b.cycles ||
                                  a.milliseconds != b.milliseconds))) {
      identical = false;
      firstDivergence = compiled[i].meta.fullName();
    }
  }

  std::printf("{\n");
  std::printf("  \"schema\": \"flexcl-staticprof-v1\",\n");
  std::printf("  \"staticprof\": [\n");
  printBenchEntry("BM_ColdEstimateStaticTier", withTier, false);
  printBenchEntry("BM_ColdEstimateInterpreterTier", withoutTier, true);
  std::printf("  ],\n");
  std::printf("  \"sweep\": {\n");
  std::printf("    \"workloads\": %zu,\n", compiled.size());
  std::printf("    \"exact\": %zu,\n", exact);
  std::printf("    \"approximate\": %zu,\n", approximate);
  std::printf("    \"unsupported\": %zu,\n", unsupported);
  std::printf("    \"estimates_identical\": %s,\n",
              identical ? "true" : "false");
  std::printf("    \"cold_speedup\": %.2f\n",
              withTier.seconds > 0 ? withoutTier.seconds / withTier.seconds
                                   : 0.0);
  std::printf("  }\n");
  std::printf("}\n");

  if (!obsOpts.finish()) return 1;
  if (!identical) {
    std::fprintf(stderr, "FAIL: estimates diverge between tiers (first: %s)\n",
                 firstDivergence.c_str());
    return 1;
  }
  if (exact < 40) {
    std::fprintf(stderr, "FAIL: only %zu/%zu kernels Exact (need >= 40)\n",
                 exact, compiled.size());
    return 1;
  }
  return 0;
}
