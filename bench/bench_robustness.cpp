// Reproduces §4.2's robustness analysis: the same design points are
// re-evaluated on a different platform (NAS-120A with an UltraScale KU060)
// for HotSpot and pathfinder. The paper reports 9.7% / 13.6% average error —
// i.e. accuracy survives a platform swap because the platform is a parameter
// of both the model and the hardware.
#include <cstdio>

#include "harness.h"

using namespace flexcl;

int main() {
  std::printf("Robustness: Virtex-7 vs UltraScale KU060 (paper §4.2)\n\n");

  const char* kernels[][2] = {{"hotspot", "hotspot"}, {"pathfinder", "dynproc"}};

  for (const auto& [benchmark, kernel] : kernels) {
    const workloads::Workload* w =
        workloads::findWorkload("rodinia", benchmark, kernel);
    if (!w) continue;
    std::printf("%s/%s\n", benchmark, kernel);
    for (const model::Device& device :
         {model::Device::virtex7(), model::Device::ku060()}) {
      model::FlexCl flexcl(device);
      bench::KernelRun run = bench::exploreWorkload(*w, flexcl);
      if (!run.ok) {
        std::printf("  %-22s FAILED: %s\n", device.name.c_str(),
                    run.error.c_str());
        continue;
      }
      std::printf("  %-22s designs=%3zu  FlexCL err=%5.1f%%  (paper: %s)\n",
                  device.name.c_str(), run.designs,
                  run.result.avgFlexclErrorPct,
                  std::string(benchmark) == "hotspot" ? "9.7% on KU060"
                                                      : "13.6% on KU060");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nShape check: errors on the KU060 stay in the same band as on the\n"
      "Virtex-7, demonstrating the model is not tuned to one platform.\n");
  return 0;
}
