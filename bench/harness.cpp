#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "obs/registry.h"
#include "obs/trace.h"
#include "runtime/compile_cache.h"
#include "runtime/thread_pool.h"

namespace flexcl::bench {

KernelRun exploreWorkload(const workloads::Workload& workload, model::FlexCl& flexcl,
                          const dse::SpaceOptions& options,
                          const RunOptions& runOptions) {
  KernelRun run;
  run.benchmark = workload.benchmark;
  run.kernel = workload.kernel;

  std::string error;
  auto compiled = workloads::compileWorkload(workload, &error);
  if (!compiled) {
    run.error = error;
    return run;
  }
  run.compiled =
      std::make_shared<workloads::CompiledWorkload>(std::move(*compiled));

  dse::ExplorerOptions exOpts;
  exOpts.jobs = runOptions.jobs;
  exOpts.evalCache = runOptions.evalCache;
  exOpts.kernelHash = runtime::kernelKeyHash(workload.source, workload.kernel,
                                             workload.defines);
  dse::Explorer explorer(flexcl, run.compiled->launch(), exOpts);
  const auto space = dse::enumerateDesignSpace(
      run.compiled->meta.range, explorer.kernelHasBarriers(), options);
  if (space.empty()) {
    run.error = "empty design space";
    return run;
  }
  run.designs = space.size();
  run.result = explorer.explore(space);
  run.runtimeStats = explorer.runtimeStats();
  run.ok = true;
  return run;
}

std::vector<KernelRun> exploreSuite(
    const std::vector<workloads::Workload>& suite, model::FlexCl& flexcl,
    const dse::SpaceOptions& options, const RunOptions& run,
    const std::function<void(const KernelRun&)>& onRow) {
  std::vector<KernelRun> runs(suite.size());
  RunOptions inner = run;
  inner.jobs = 1;  // the workload is the unit of parallelism
  const int jobs = run.jobs == 0 ? runtime::defaultJobs() : std::max(1, run.jobs);
  if (jobs > 1 && suite.size() > 1) {
    runtime::ThreadPool pool(jobs);
    pool.parallelFor(suite.size(), [&](std::size_t i) {
      runs[i] = exploreWorkload(suite[i], flexcl, options, inner);
    });
    if (onRow) {
      for (const KernelRun& r : runs) onRow(r);
    }
  } else {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      runs[i] = exploreWorkload(suite[i], flexcl, options, inner);
      if (onRow) onRow(runs[i]);
    }
  }
  return runs;
}

void printTable2Header() {
  std::printf(
      "| %-14s | %-11s | %8s | %12s | %11s | %10s | %13s | %11s | %11s |\n",
      "Benchmark", "Kernel", "#Designs", "SDAccel err%", "FlexCL err%",
      "SDAcc fail%", "SystemRun (s)", "SDAcc (min)", "FlexCL (s)");
  std::printf(
      "|----------------|-------------|----------|--------------|-------------|"
      "------------|---------------|-------------|-------------|\n");
}

void printTable2Row(const KernelRun& run) {
  if (!run.ok) {
    std::printf("| %-14s | %-11s | FAILED: %s\n", run.benchmark.c_str(),
                run.kernel.c_str(), run.error.c_str());
    return;
  }
  std::printf(
      "| %-14s | %-11s | %8zu | %12.1f | %11.1f | %10.1f | %13.2f | %11.1f | "
      "%11.3f |\n",
      run.benchmark.c_str(), run.kernel.c_str(), run.designs,
      run.result.avgSdaccelErrorPct, run.result.avgFlexclErrorPct,
      run.result.sdaccelFailRatePct, run.result.simSeconds,
      run.result.sdaccelMinutes, run.result.flexclSeconds);
}

SuiteSummary summarize(const std::vector<KernelRun>& runs) {
  SuiteSummary s;
  for (const KernelRun& run : runs) {
    if (!run.ok) continue;
    s.avgFlexclErrPct += run.result.avgFlexclErrorPct;
    s.avgSdaccelErrPct += run.result.avgSdaccelErrorPct;
    s.avgSdaccelFailPct += run.result.sdaccelFailRatePct;
    s.avgPickGapPct += run.result.pickGapPct;
    s.avgSpeedup += run.result.speedupVsBaseline;
    s.totalFlexclSeconds += run.result.flexclSeconds;
    s.totalSimSeconds += run.result.simSeconds;
    s.totalSdaccelMinutes += run.result.sdaccelMinutes;
    ++s.kernels;
  }
  if (s.kernels > 0) {
    s.avgFlexclErrPct /= s.kernels;
    s.avgSdaccelErrPct /= s.kernels;
    s.avgSdaccelFailPct /= s.kernels;
    s.avgPickGapPct /= s.kernels;
    s.avgSpeedup /= s.kernels;
  }
  return s;
}

void printSummary(const char* title, const SuiteSummary& s) {
  std::printf("\n%s\n", title);
  std::printf("  kernels evaluated            : %d\n", s.kernels);
  std::printf("  avg FlexCL abs error         : %.1f%%  (paper: 9.5%% Rodinia / 8.7%% PolyBench)\n",
              s.avgFlexclErrPct);
  std::printf("  avg SDAccel abs error        : %.1f%%  (paper: 30.4%% - 84.9%%)\n",
              s.avgSdaccelErrPct);
  std::printf("  avg SDAccel failure rate     : %.1f%%  (paper: ~42%%)\n",
              s.avgSdaccelFailPct);
  std::printf("  avg FlexCL pick gap          : %.2f%%  (paper: within 2.1%% of optimal)\n",
              s.avgPickGapPct);
  std::printf("  avg speedup vs unoptimised   : %.0fx   (paper: 273x)\n", s.avgSpeedup);
  std::printf("  exploration time, System Run : %.1f s (paper: hours per kernel on real synthesis)\n",
              s.totalSimSeconds);
  std::printf("  exploration time, SDAccel    : %.0f modelled minutes\n",
              s.totalSdaccelMinutes);
  std::printf("  exploration time, FlexCL     : %.2f s\n", s.totalFlexclSeconds);
  if (s.totalFlexclSeconds > 0) {
    std::printf("  FlexCL speedup vs System Run : %.0fx (vs real synthesis: >10,000x)\n",
                s.totalSimSeconds / s.totalFlexclSeconds);
  }
}

bool parseJobsFlag(int* argc, char** argv, int* jobs) {
  int out = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") != 0) {
      argv[out++] = argv[i];
      continue;
    }
    if (i + 1 >= *argc) {
      std::fprintf(stderr, "--jobs needs a worker-count argument\n");
      ok = false;
      break;
    }
    char* end = nullptr;
    const long v = std::strtol(argv[++i], &end, 10);
    if (end == nullptr || *end != '\0' || v < 0) {
      std::fprintf(stderr, "--jobs: invalid worker count '%s'\n", argv[i]);
      ok = false;
      break;
    }
    *jobs = static_cast<int>(v);
  }
  *argc = out;
  return ok;
}

bool ObsOptions::parse(int* argc, char** argv) {
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string* target = nullptr;
    if (std::strcmp(argv[i], "--trace") == 0) target = &tracePath;
    else if (std::strcmp(argv[i], "--metrics") == 0) target = &metricsPath;
    if (!target) {
      argv[out++] = argv[i];
      continue;
    }
    if (i + 1 >= *argc) {
      std::fprintf(stderr, "%s needs a file argument\n", argv[i]);
      return false;
    }
    *target = argv[++i];
  }
  *argc = out;
  return true;
}

void ObsOptions::begin() const {
  if (!metricsPath.empty()) obs::setEnabled(true);
  if (!tracePath.empty()) obs::Tracer::global().start();
}

bool ObsOptions::finish(const runtime::Stats* stats) const {
  bool ok = true;
  if (!tracePath.empty()) {
    obs::Tracer::global().stop();
    if (!obs::Tracer::global().writeTo(tracePath)) {
      std::fprintf(stderr, "cannot write trace to %s\n", tracePath.c_str());
      ok = false;
    }
  }
  if (!metricsPath.empty()) {
    if (stats) stats->publishTo(obs::Registry::global());
    std::ofstream out(metricsPath);
    if (out) out << obs::Registry::global().json() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n", metricsPath.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace flexcl::bench
