// Reproduces §4.3's comparison: FlexCL + exhaustive search versus the
// step-by-step heuristic of Wang et al. [16] on PolyBench. The paper: 96% of
// the configurations found by FlexCL-exhaustive are optimal versus 12% for
// the heuristic.
//
// "Optimal" here = within 2.5% of the System-Run optimum: the simulator
// realises each design with its own (deterministic) IP-latency spread, so
// near-tied designs reorder by a few percent — a noise floor the paper's
// real board does not have per-design.
#include <cstdio>

#include "dse/heuristic16.h"
#include "harness.h"

using namespace flexcl;

int main() {
  std::printf("Exhaustive FlexCL vs step-by-step heuristic [16] (paper §4.3)\n\n");
  std::printf("| %-22s | %-10s | %-10s | %12s | %12s |\n", "kernel",
              "FlexCL opt", "[16] opt", "FlexCL gap%%", "[16] gap%%");
  std::printf(
      "|------------------------|------------|------------|--------------|"
      "--------------|\n");

  model::FlexCl flexcl(model::Device::virtex7());
  int flexclOptimal = 0, heuristicOptimal = 0, evaluated = 0;

  for (const workloads::Workload& w : workloads::polybenchSuite()) {
    bench::KernelRun run = bench::exploreWorkload(w, flexcl);
    if (!run.ok) {
      std::printf("| %-22s | FAILED: %s\n", w.fullName().c_str(),
                  run.error.c_str());
      continue;
    }

    // Heuristic pick, evaluated on the ground truth.
    dse::Explorer explorer(flexcl, run.compiled->launch());
    const auto space = dse::enumerateDesignSpace(
        run.compiled->meta.range, explorer.kernelHasBarriers());
    const dse::HeuristicResult heuristic =
        dse::heuristicSearch(flexcl, run.compiled->launch(), space);
    const double heuristicSim = explorer.simulateDesign(heuristic.chosen);

    const double best =
        run.result.designs[static_cast<std::size_t>(run.result.bestBySim)]
            .simCycles;
    const double flexclGap = run.result.pickGapPct;
    const double heuristicGap =
        best > 0 ? (heuristicSim / best - 1.0) * 100.0 : 0.0;

    const bool flexclOpt = flexclGap <= 2.5;
    const bool heuristicOpt = heuristicGap <= 2.5;
    flexclOptimal += flexclOpt ? 1 : 0;
    heuristicOptimal += heuristicOpt ? 1 : 0;
    ++evaluated;

    std::printf("| %-22s | %-10s | %-10s | %12.2f | %12.2f |\n",
                w.fullName().c_str(), flexclOpt ? "yes" : "no",
                heuristicOpt ? "yes" : "no", flexclGap, heuristicGap);
    std::fflush(stdout);
  }

  if (evaluated > 0) {
    std::printf(
        "\nOptimal configurations found: FlexCL-exhaustive %d/%d (%.0f%%), "
        "heuristic [16] %d/%d (%.0f%%)\n",
        flexclOptimal, evaluated, 100.0 * flexclOptimal / evaluated,
        heuristicOptimal, evaluated, 100.0 * heuristicOptimal / evaluated);
    std::printf("(paper: 96%% vs 12%%)\n");
  }
  return 0;
}
