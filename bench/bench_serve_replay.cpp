// Serving-store replay: cold process vs warm store (DESIGN.md §12).
//
// Replays one request mix — explores, estimates, lints and explains over
// three representative kernels — through two serve::Dispatcher instances
// sharing an on-disk store:
//   1. cold: empty store, everything computed and persisted,
//   2. warm: a *new* dispatcher over the populated store, simulating a
//      restarted daemon answering the same traffic.
// Reports, as JSON on stdout:
//   - a google-benchmark-shaped "serve_replay" section (BM_ServeReplayCold /
//     BM_ServeReplayWarm wall-clock ns) consumable by bench_gate,
//   - a "serve_latency" section with per-request p50/p99 for both runs
//     (BM_ServeRequestP50Cold / P99Cold / P50Warm / P99Warm), aggregated
//     from the `serve.request.*.latency_us` histograms the dispatcher
//     records (DESIGN.md §14) — also gated by bench_gate,
//   - whether every warm response was byte-identical to its cold twin
//     (the store must change *when*, never *what*),
//   - the warm run's combined cache hit rate and disk-warmed share, straight
//     from the dispatcher's runtime::Stats counters (the same numbers the
//     `cache.*.warm_hits` gauges publish).
// Exit code 1 when responses diverge or the combined warm hit rate drops
// below 90% — wall-clock speedup is reported but not gated (CI noise).
//
// Usage: bench_serve_replay [store-dir]   (default: serve_replay_store)
#include <chrono>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "harness.h"
#include "obs/registry.h"
#include "serve/dispatcher.h"
#include "serve/json.h"

using namespace flexcl;

namespace {

struct ReplayKernel {
  const char* name;
  const char* source;
  std::uint64_t global;
};

// Three shapes the model treats differently: streaming, loop-carried work,
// and local memory with barriers (forces barrier comm mode).
const ReplayKernel kKernels[] = {
    {"saxpy",
     "__kernel void saxpy(__global float* x, __global float* y, float a) {"
     "  int i = get_global_id(0); y[i] = a * x[i] + y[i]; }",
     512},
    {"rowsum",
     "__kernel void rowsum(__global float* m, __global float* out, int n) {"
     "  int i = get_global_id(0); float acc = 0.0f;"
     "  for (int j = 0; j < 64; ++j) acc += m[i * 64 + j];"
     "  out[i] = acc; }",
     256},
    {"stencil",
     "__kernel void stencil(__global float* in, __global float* out) {"
     "  __local float tile[66]; int g = get_global_id(0);"
     "  int l = get_local_id(0); tile[l + 1] = in[g];"
     "  barrier(CLK_LOCAL_MEM_FENCE);"
     "  out[g] = tile[l] + tile[l + 1] + tile[l + 2]; }",
     512},
};

std::vector<std::string> buildRequestMix() {
  std::vector<std::string> lines;
  std::uint64_t id = 1;
  for (const ReplayKernel& k : kKernels) {
    const std::string common = std::string("\"source\": \"") +
                               serve::jsonEscapeString(k.source) +
                               "\", \"kernel\": \"" + k.name +
                               "\", \"global\": " + std::to_string(k.global);
    std::ostringstream explore;
    explore << "{\"id\": " << id++ << ", \"op\": \"explore\", " << common
            << "}";
    lines.push_back(explore.str());
    for (int wg : {32, 64}) {
      for (int pe : {1, 4}) {
        std::ostringstream est;
        est << "{\"id\": " << id++ << ", \"op\": \"estimate\", " << common
            << ", \"design\": {\"wg\": " << wg << ", \"pe\": " << pe << "}}";
        lines.push_back(est.str());
      }
    }
    std::ostringstream lint;
    lint << "{\"id\": " << id++ << ", \"op\": \"lint\", " << common
         << ", \"design\": {\"wg\": 64}}";
    lines.push_back(lint.str());
    std::ostringstream explain;
    explain << "{\"id\": " << id++ << ", \"op\": \"explain\", " << common
            << ", \"design\": {\"wg\": 64, \"pe\": 2}}";
    lines.push_back(explain.str());
  }
  return lines;
}

struct ReplayRun {
  std::vector<std::string> responses;
  double seconds = 0;
  double cpuSeconds = 0;
  runtime::Stats stats;
  runtime::CounterSnapshot responseCounters;
  /// All `serve.request.*.latency_us` samples of this run merged into one
  /// distribution (per-run: the registry is reset before each replay).
  obs::HistogramSnapshot latency;
};

/// Merges every per-kind request-latency histogram currently in the global
/// registry into one snapshot.
obs::HistogramSnapshot aggregateRequestLatency() {
  obs::HistogramSnapshot agg;
  for (const auto& sample : obs::Registry::global().histograms()) {
    const std::string& name = sample.name;
    if (name.rfind("serve.request.", 0) == 0 &&
        name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".latency_us") == 0) {
      agg += sample.value;
    }
  }
  return agg;
}

ReplayRun replay(const std::string& storeDir,
                 const std::vector<std::string>& lines) {
  serve::DispatcherOptions opts;
  opts.storeDir = storeDir;
  serve::Dispatcher dispatcher(opts);
  ReplayRun run;
  if (!dispatcher.storeOk()) {
    std::fprintf(stderr, "store failed: %s\n", dispatcher.storeError().c_str());
    return run;
  }
  // Per-run latency attribution: zero the histograms so this replay's
  // samples are its own (deltaSince would work too; reset is simpler here
  // because each run owns the whole registry).
  obs::Registry::global().reset();
  const auto wallStart = std::chrono::steady_clock::now();
  const std::clock_t cpuStart = std::clock();
  run.responses.reserve(lines.size());
  for (const std::string& line : lines) {
    run.responses.push_back(dispatcher.handleLine(line));
  }
  run.cpuSeconds =
      static_cast<double>(std::clock() - cpuStart) / CLOCKS_PER_SEC;
  run.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wallStart)
                    .count();
  run.stats = dispatcher.stats();
  run.responseCounters = dispatcher.responseCounters();
  run.latency = aggregateRequestLatency();
  return run;
}

/// hits / (hits + misses) over every family the serve path exercises,
/// plus the rendered-response cache.
void combinedTraffic(const ReplayRun& run, std::uint64_t* hits,
                     std::uint64_t* misses, std::uint64_t* warm) {
  const runtime::CounterSnapshot* families[] = {
      &run.stats.compile,  &run.stats.flexclEval, &run.stats.sdaccelEval,
      &run.stats.simEval,  &run.stats.profile,    &run.stats.analysis,
      &run.responseCounters,
  };
  *hits = *misses = *warm = 0;
  for (const runtime::CounterSnapshot* c : families) {
    *hits += c->hits;
    *misses += c->misses;
    *warm += c->warmHits;
  }
}

void printBenchEntry(const char* name, const ReplayRun& run, bool last) {
  std::printf("    {\"name\": \"%s\", \"iterations\": 1, "
              "\"real_time\": %.0f, \"cpu_time\": %.0f, "
              "\"time_unit\": \"ns\"}%s\n",
              name, run.seconds * 1e9, run.cpuSeconds * 1e9, last ? "" : ",");
}

/// One request-latency percentile as a bench entry (ns, like the wall-clock
/// entries, so bench_gate ratios them uniformly).
void printLatencyEntry(const char* name, const obs::HistogramSnapshot& s,
                       double q, bool last) {
  const double ns = s.quantile(q) * 1e3;  // histograms record microseconds
  std::printf("    {\"name\": \"%s\", \"iterations\": %llu, "
              "\"real_time\": %.0f, \"cpu_time\": %.0f, "
              "\"time_unit\": \"ns\"}%s\n",
              name, static_cast<unsigned long long>(s.count), ns, ns,
              last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsOptions obsOpts;
  if (!obsOpts.parse(&argc, argv)) return 2;
  obsOpts.begin();
  // The latency percentiles come from the serve.request.* histograms, which
  // only sample with observability on (results stay bit-identical either
  // way — that's the §9 contract this bench's twin-run check rides on).
  obs::setEnabled(true);

  const std::string storeDir = argc > 1 ? argv[1] : "serve_replay_store";
  std::filesystem::remove_all(storeDir);

  const std::vector<std::string> lines = buildRequestMix();
  const ReplayRun cold = replay(storeDir, lines);
  const ReplayRun warm = replay(storeDir, lines);  // a "restarted" daemon
  if (cold.responses.size() != lines.size() ||
      warm.responses.size() != lines.size()) {
    return 1;
  }

  const bool bitIdentical = cold.responses == warm.responses;
  std::uint64_t warmHits = 0, warmMisses = 0, warmFromDisk = 0;
  combinedTraffic(warm, &warmHits, &warmMisses, &warmFromDisk);
  const double hitRatePct =
      warmHits + warmMisses > 0
          ? 100.0 * static_cast<double>(warmHits) /
                static_cast<double>(warmHits + warmMisses)
          : 0.0;

  std::printf("{\n");
  std::printf("  \"schema\": \"flexcl-serve-replay-v1\",\n");
  std::printf("  \"serve_replay\": [\n");
  printBenchEntry("BM_ServeReplayCold", cold, false);
  printBenchEntry("BM_ServeReplayWarm", warm, true);
  std::printf("  ],\n");
  std::printf("  \"serve_latency\": [\n");
  printLatencyEntry("BM_ServeRequestP50Cold", cold.latency, 0.50, false);
  printLatencyEntry("BM_ServeRequestP99Cold", cold.latency, 0.99, false);
  printLatencyEntry("BM_ServeRequestP50Warm", warm.latency, 0.50, false);
  printLatencyEntry("BM_ServeRequestP99Warm", warm.latency, 0.99, true);
  std::printf("  ],\n");
  std::printf("  \"replay\": {\n");
  std::printf("    \"requests\": %zu,\n", lines.size());
  std::printf("    \"bit_identical\": %s,\n", bitIdentical ? "true" : "false");
  std::printf("    \"speedup\": %.2f,\n",
              warm.seconds > 0 ? cold.seconds / warm.seconds : 0.0);
  std::printf("    \"cold_latency_us\": %s,\n", cold.latency.json().c_str());
  std::printf("    \"warm_latency_us\": %s,\n", warm.latency.json().c_str());
  std::printf("    \"warm_combined_hit_rate_pct\": %.1f,\n", hitRatePct);
  std::printf("    \"warm_disk_warmed_hits\": %llu,\n",
              static_cast<unsigned long long>(warmFromDisk));
  std::printf("    \"cold_stats\": %s,\n", cold.stats.json().c_str());
  std::printf("    \"warm_stats\": %s,\n", warm.stats.json().c_str());
  std::printf("    \"warm_responses\": %s\n",
              warm.responseCounters.json().c_str());
  std::printf("  }\n");
  std::printf("}\n");

  runtime::Stats statsForObs = warm.stats;
  if (!obsOpts.finish(&statsForObs)) return 1;
  if (!bitIdentical) {
    std::fprintf(stderr, "FAIL: warm responses differ from cold run\n");
    return 1;
  }
  if (hitRatePct < 90.0) {
    std::fprintf(stderr, "FAIL: warm combined hit rate %.1f%% < 90%%\n",
                 hitRatePct);
    return 1;
  }
  if (warmFromDisk == 0) {
    std::fprintf(stderr, "FAIL: no disk-warmed hits on the warm run\n");
    return 1;
  }
  if (cold.latency.count != lines.size() ||
      warm.latency.count != lines.size()) {
    std::fprintf(stderr,
                 "FAIL: latency histograms saw %llu/%llu samples, expected "
                 "%zu each\n",
                 static_cast<unsigned long long>(cold.latency.count),
                 static_cast<unsigned long long>(warm.latency.count),
                 lines.size());
    return 1;
  }
  return 0;
}
