// Shared harness for the paper-reproduction benches: runs one workload's
// full design space through FlexCL, the System-Run substitute, and the
// SDAccel-style estimator, and aggregates the Table-2 style metrics.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "runtime/eval_cache.h"
#include "runtime/stats.h"
#include "workloads/workload.h"

namespace flexcl::bench {

struct KernelRun {
  std::string benchmark;
  std::string kernel;
  bool ok = false;
  std::string error;
  std::size_t designs = 0;
  dse::ExplorationResult result;
  /// Cache / thread counters of this exploration.
  runtime::Stats runtimeStats;
  /// Keeps the compiled workload alive (the result references its buffers).
  std::shared_ptr<workloads::CompiledWorkload> compiled;
};

/// Evaluation-runtime knobs for a harness run (all benches default to the
/// serial, uncached behaviour so paper-reproduction timings stay comparable).
struct RunOptions {
  int jobs = 1;  ///< 0 = hardware concurrency
  runtime::EvalCache* evalCache = nullptr;
};

/// Explores the workload's design space with all three evaluators.
KernelRun exploreWorkload(const workloads::Workload& workload, model::FlexCl& flexcl,
                          const dse::SpaceOptions& options = {},
                          const RunOptions& run = {});

/// Suite-level sharding: with `run.jobs` > 1, each workload's exploration
/// runs as one job on a runtime::ThreadPool while the inner explorations stay
/// serial (the workload is the unit of parallelism, so the pool is never
/// oversubscribed). Results land by suite index and every exploration is
/// itself deterministic, so the result columns and summary are identical to
/// the serial loop at any worker count — only measured wall times (and the
/// per-run cache-delta stats, which overlap across concurrent siblings) vary.
/// `onRow`, when set, is invoked serially in suite order: streamed as each
/// run finishes when serial, after completion when sharded.
std::vector<KernelRun> exploreSuite(
    const std::vector<workloads::Workload>& suite, model::FlexCl& flexcl,
    const dse::SpaceOptions& options = {}, const RunOptions& run = {},
    const std::function<void(const KernelRun&)>& onRow = {});

/// Strips a `--jobs N` flag out of argv (same in-place compaction as
/// ObsOptions::parse); 0 means hardware concurrency. Returns false on a
/// missing or non-numeric value. Leaves *jobs untouched if the flag is
/// absent.
bool parseJobsFlag(int* argc, char** argv, int* jobs);

/// Renders one Table-2 style row: kernel, #designs, errors, times.
void printTable2Header();
void printTable2Row(const KernelRun& run);

struct SuiteSummary {
  double avgFlexclErrPct = 0;
  double avgSdaccelErrPct = 0;
  double avgSdaccelFailPct = 0;
  double avgPickGapPct = 0;
  double avgSpeedup = 0;
  double totalFlexclSeconds = 0;
  double totalSimSeconds = 0;
  double totalSdaccelMinutes = 0;
  int kernels = 0;
};

SuiteSummary summarize(const std::vector<KernelRun>& runs);
void printSummary(const char* title, const SuiteSummary& summary);

/// Observability flags shared by the bench mains (DESIGN.md §9): recognises
/// `--trace out.json` and `--metrics out.json`, mirroring the flexcl CLI.
/// All timing everywhere in the harness and benches is steady_clock-based
/// (monotonic), so traces and the timed columns never jump with wall-clock
/// adjustments.
struct ObsOptions {
  std::string tracePath;    ///< Chrome trace JSON, written by finish()
  std::string metricsPath;  ///< registry snapshot JSON, written by finish()

  /// Strips the recognised flags out of argv (compacting it in place and
  /// updating *argc) so the bench's own positional arguments keep working.
  /// Returns false if a flag is missing its value.
  bool parse(int* argc, char** argv);
  /// Enables counters / starts the tracer according to the paths set.
  void begin() const;
  /// Stops the tracer and writes the requested files; `stats`, when given,
  /// is published into the registry first (cache.* gauges). Returns false
  /// on I/O failure.
  bool finish(const runtime::Stats* stats = nullptr) const;
};

}  // namespace flexcl::bench
