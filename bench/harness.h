// Shared harness for the paper-reproduction benches: runs one workload's
// full design space through FlexCL, the System-Run substitute, and the
// SDAccel-style estimator, and aggregates the Table-2 style metrics.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "dse/explorer.h"
#include "runtime/eval_cache.h"
#include "runtime/stats.h"
#include "workloads/workload.h"

namespace flexcl::bench {

struct KernelRun {
  std::string benchmark;
  std::string kernel;
  bool ok = false;
  std::string error;
  std::size_t designs = 0;
  dse::ExplorationResult result;
  /// Cache / thread counters of this exploration.
  runtime::Stats runtimeStats;
  /// Keeps the compiled workload alive (the result references its buffers).
  std::shared_ptr<workloads::CompiledWorkload> compiled;
};

/// Evaluation-runtime knobs for a harness run (all benches default to the
/// serial, uncached behaviour so paper-reproduction timings stay comparable).
struct RunOptions {
  int jobs = 1;  ///< 0 = hardware concurrency
  runtime::EvalCache* evalCache = nullptr;
};

/// Explores the workload's design space with all three evaluators.
KernelRun exploreWorkload(const workloads::Workload& workload, model::FlexCl& flexcl,
                          const dse::SpaceOptions& options = {},
                          const RunOptions& run = {});

/// Renders one Table-2 style row: kernel, #designs, errors, times.
void printTable2Header();
void printTable2Row(const KernelRun& run);

struct SuiteSummary {
  double avgFlexclErrPct = 0;
  double avgSdaccelErrPct = 0;
  double avgSdaccelFailPct = 0;
  double avgPickGapPct = 0;
  double avgSpeedup = 0;
  double totalFlexclSeconds = 0;
  double totalSimSeconds = 0;
  double totalSdaccelMinutes = 0;
  int kernels = 0;
};

SuiteSummary summarize(const std::vector<KernelRun>& runs);
void printSummary(const char* title, const SuiteSummary& summary);

}  // namespace flexcl::bench
